"""Serving resilience: breakers, retry budgets, shedding, degradation tiers."""

from __future__ import annotations

import threading
import time

import pytest

from repro.data.synthetic import generate_relation
from repro.data.workload import sample_linear_function, sample_predicate
from repro.query.session import QuerySession
from repro.serve.executor import (
    AdmissionFull,
    QueryExecutor,
    QueryShed,
    QueryTimeout,
)
from repro.serve.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    DegradationPolicy,
    Resilience,
    RetryBudget,
)
from repro.storage.disk import SimulatedDisk
from repro.storage.errors import CorruptPageError, TransientIOError
from repro.storage.faults import DeterministicClock, FaultPlan, FaultRule, FaultyDisk
from repro.system import build_system

pytestmark = pytest.mark.concurrent


@pytest.fixture
def system(fresh_system):
    return fresh_system(n_tuples=400)


@pytest.fixture
def faulty(small_config):
    """A system on a fault-injecting disk, armed *after* the build."""
    disk = FaultyDisk(SimulatedDisk())
    return disk, build_system(generate_relation(small_config, disk=disk), fanout=8)


def _blocker(started: threading.Event, gate: threading.Event):
    def run(session):
        started.set()
        assert gate.wait(timeout=30.0)
        return session.skyline()

    return run


# ---------------------------------------------------------------------- #
# circuit-breaker state machine
# ---------------------------------------------------------------------- #


def test_breaker_opens_after_threshold_consecutive_failures():
    board = BreakerBoard(threshold=2)
    assert board.allow("c", 0, epoch=1)
    board.record_failure("c", 0, epoch=1)
    assert board.state_of("c", 0) == CLOSED  # one failure: still closed
    board.record_failure("c", 0, epoch=1)
    assert board.state_of("c", 0) == OPEN
    assert not board.allow("c", 0, epoch=1)  # same epoch: short-circuit
    assert board.snapshot()["short_circuits"] == 1
    assert board.open_count() == 1


def test_breaker_success_resets_the_failure_streak():
    board = BreakerBoard(threshold=2)
    board.record_failure("c", 0, epoch=1)
    board.record_success("c", 0)
    board.record_failure("c", 0, epoch=1)
    assert board.state_of("c", 0) == CLOSED  # streak broken, not cumulative


def test_breaker_half_open_probe_heals_on_success():
    board = BreakerBoard(threshold=1)
    board.record_failure("c", 3, epoch=1)
    assert board.state_of("c", 3) == OPEN
    # A newer epoch was published: exactly one probe is let through,
    # concurrent queries of the same epoch keep short-circuiting.
    assert board.allow("c", 3, epoch=2)
    assert board.state_of("c", 3) == HALF_OPEN
    assert not board.allow("c", 3, epoch=2)
    board.record_success("c", 3)
    assert board.state_of("c", 3) == CLOSED
    assert board.allow("c", 3, epoch=2)
    snapshot = board.snapshot()
    assert snapshot["half_open_probes"] == 1
    assert snapshot["healed"] == 1


def test_breaker_half_open_probe_failure_reopens_for_that_epoch():
    board = BreakerBoard(threshold=1)
    board.record_failure("c", 0, epoch=1)
    assert board.allow("c", 0, epoch=2)  # the probe
    board.record_failure("c", 0, epoch=2)  # probe failed
    assert board.state_of("c", 0) == OPEN
    assert not board.allow("c", 0, epoch=2)  # epoch 2 is now stamped
    assert board.allow("c", 0, epoch=3)  # only a newer epoch re-probes


def test_breaker_live_sessions_do_not_half_open_without_epochs():
    board = BreakerBoard(threshold=1)
    board.record_failure("c", 0, epoch=None)
    assert not board.allow("c", 0, epoch=None)
    assert board.state_of("c", 0) == OPEN  # heals via reset() only


def test_breaker_reset_closes_every_breaker_of_the_cell():
    board = BreakerBoard(threshold=1)
    board.record_failure("c", 0, epoch=1)
    board.record_failure("c", 7, epoch=1)
    board.record_failure("other", 0, epoch=1)
    board.reset("c")
    assert board.state_of("c", 0) == CLOSED
    assert board.state_of("c", 7) == CLOSED
    assert board.state_of("other", 0) == OPEN


def test_breaker_board_rejects_nonpositive_threshold():
    with pytest.raises(ValueError):
        BreakerBoard(threshold=0)
    assert Resilience(breaker_threshold=0).build_board() is None


def test_resilience_defaults_enable_the_full_chain():
    knobs = Resilience()
    assert knobs.degradation is not None
    assert knobs.degradation.allow_boolean_first
    assert knobs.shed
    assert knobs.build_board() is not None
    bare = Resilience(
        breaker_threshold=0,
        degradation=DegradationPolicy(allow_boolean_first=False),
        shed=False,
    )
    assert not bare.degradation.allow_boolean_first


# ---------------------------------------------------------------------- #
# retry budgets
# ---------------------------------------------------------------------- #


def test_retry_budget_translates_wall_deadline_to_clock_deadline():
    clock = DeterministicClock()
    clock.sleep(2.0)
    assert RetryBudget(None).remaining() is None
    assert RetryBudget(None).clock_deadline(clock) is None
    ahead = RetryBudget(time.perf_counter() + 5.0)
    deadline = ahead.clock_deadline(clock)
    assert 2.0 + 4.0 < deadline <= 2.0 + 5.0
    # A lapsed wall deadline leaves zero backoff budget, never negative.
    lapsed = RetryBudget(time.perf_counter() - 1.0)
    assert lapsed.clock_deadline(clock) == clock.now


# ---------------------------------------------------------------------- #
# load shedding and admission payloads
# ---------------------------------------------------------------------- #


def test_admission_full_carries_backoff_payload(system):
    started, gate = threading.Event(), threading.Event()
    with QueryExecutor(system, threads=1, queue_depth=1) as executor:
        blocked = executor.submit("block", _blocker(started, gate))
        assert started.wait(timeout=30.0)
        executor.skyline()  # fills the depth-1 queue (no deadline: survives)
        with pytest.raises(AdmissionFull) as excinfo:
            executor.skyline(deadline=5.0)
        gate.set()
        blocked.result(timeout=30.0)
    assert excinfo.value.queue_depth == 1
    assert excinfo.value.retry_after > 0.0
    assert 0.0 < excinfo.value.deadline_remaining <= 5.0
    assert "retry after" in str(excinfo.value)


def test_full_queue_sheds_expired_tickets_instead_of_rejecting(system):
    started, gate = threading.Event(), threading.Event()
    with QueryExecutor(system, threads=1, queue_depth=1) as executor:
        blocked = executor.submit("block", _blocker(started, gate))
        assert started.wait(timeout=30.0)
        doomed = executor.skyline(deadline=0.01)
        time.sleep(0.05)  # the queued ticket's deadline lapses
        admitted = executor.skyline()  # eviction makes room: no AdmissionFull
        gate.set()
        with pytest.raises(QueryShed) as excinfo:
            doomed.result(timeout=30.0)
        assert admitted.result(timeout=30.0).tids
        blocked.result(timeout=30.0)
    shed = excinfo.value
    assert isinstance(shed, QueryTimeout)  # a shed IS a deadline failure
    assert shed.kind == "skyline"
    assert shed.deadline_remaining < 0.0
    assert shed.retry_after >= 0.0
    assert shed.queue_depth >= 0
    stats = executor.stats.snapshot()
    assert stats["shed"] == 1
    assert stats["timed_out"] == 1  # sheds count as timeouts too
    assert stats["rejected"] == 0
    assert stats["completed"] == 2


def test_worker_sheds_doomed_ticket_at_pickup(system):
    started, gate = threading.Event(), threading.Event()
    with QueryExecutor(system, threads=1, queue_depth=4) as executor:
        blocked = executor.submit("block", _blocker(started, gate))
        assert started.wait(timeout=30.0)
        doomed = executor.skyline(deadline=0.01)
        time.sleep(0.05)
        gate.set()
        with pytest.raises(QueryShed):
            doomed.result(timeout=30.0)
        blocked.result(timeout=30.0)
    assert executor.stats.snapshot()["shed"] == 1


def test_shedding_disabled_falls_back_to_plain_timeouts(system):
    started, gate = threading.Event(), threading.Event()
    bare = Resilience(shed=False)
    with QueryExecutor(
        system, threads=1, queue_depth=4, resilience=bare
    ) as executor:
        blocked = executor.submit("block", _blocker(started, gate))
        assert started.wait(timeout=30.0)
        doomed = executor.skyline(deadline=0.01)
        time.sleep(0.05)
        gate.set()
        with pytest.raises(QueryTimeout) as excinfo:
            doomed.result(timeout=30.0)
        blocked.result(timeout=30.0)
    assert not isinstance(excinfo.value, QueryShed)
    stats = executor.stats.snapshot()
    assert stats["shed"] == 0 and stats["timed_out"] == 1


# ---------------------------------------------------------------------- #
# the ticket must never hang
# ---------------------------------------------------------------------- #


def test_stats_aggregation_bug_fails_the_ticket_instead_of_hanging(system):
    """An exception in the worker *outside* the query call (here: stats
    bookkeeping) must resolve the ticket with that error — a waiter
    blocked forever is the one unacceptable outcome."""
    with QueryExecutor(system, threads=1) as executor:

        def boom(*args, **kwargs):
            raise RuntimeError("stats bug")

        executor.stats.note_finished = boom
        ticket = executor.skyline()
        with pytest.raises(RuntimeError, match="stats bug"):
            ticket.result(timeout=30.0)
        assert ticket.done()


# ---------------------------------------------------------------------- #
# the degradation chain end to end
# ---------------------------------------------------------------------- #


def test_boolean_first_fallback_is_byte_identical_to_serial(faulty, rng):
    """Corrupting the R-tree root forces tier 3; answers must not change."""
    disk, system = faulty
    predicate = sample_predicate(system.relation, 1, rng)
    fn = sample_linear_function(system.relation.schema.n_preference, rng)
    serial_sky = system.engine.skyline(predicate)
    serial_topk = system.engine.topk(fn, 10, predicate)

    disk.plan = FaultPlan([FaultRule(kind="corrupt", tag="rtree", count=1)])
    with QueryExecutor(system, threads=2) as executor:
        sky = executor.skyline(predicate).result(timeout=30.0)
        topk = executor.topk(fn, 10, predicate).result(timeout=30.0)

    assert sky.tids == serial_sky.tids
    assert topk.tids == serial_topk.tids
    assert topk.scores == serial_topk.scores
    for result in (sky, topk):
        assert result.stats.tier == "boolean-first"
        assert result.stats.degraded
    stats = executor.stats.snapshot()
    assert stats["tiers"] == {"boolean-first": 2}
    assert stats["degraded_queries"] == 2


def test_degraded_fallback_chains_the_original_storage_fault(faulty, rng):
    """When even the boolean-first scan faults, the raised error must carry
    the fault that forced the fallback as its ``__cause__``."""
    disk, system = faulty
    predicate = sample_predicate(system.relation, 1, rng)
    session = QuerySession(
        system.relation,
        system.rtree,
        system.pcube,
        degradation=DegradationPolicy(),
    )
    disk.plan = FaultPlan(
        [
            FaultRule(kind="corrupt", tag="rtree", count=1),
            FaultRule(kind="transient", tag="heap", count=50),
        ]
    )
    with pytest.raises(TransientIOError) as excinfo:
        session.skyline(predicate)
    assert isinstance(excinfo.value.__cause__, CorruptPageError)


def test_paper_mode_propagates_search_structure_faults(faulty, rng):
    """The serial engine defaults to tiers 1-2 only: an R-tree fault is a
    typed error, never a silent plan change."""
    disk, system = faulty
    predicate = sample_predicate(system.relation, 1, rng)
    disk.plan = FaultPlan([FaultRule(kind="corrupt", tag="rtree", count=1)])
    with pytest.raises(CorruptPageError):
        system.engine.skyline(predicate)


def test_boolean_first_results_refuse_incremental_resume(faulty, rng):
    disk, system = faulty
    predicate = sample_predicate(system.relation, 1, rng)
    session = QuerySession(
        system.relation,
        system.rtree,
        system.pcube,
        degradation=DegradationPolicy(),
    )
    disk.plan = FaultPlan([FaultRule(kind="corrupt", tag="rtree", count=1)])
    degraded = session.skyline(predicate)
    assert degraded.stats.tier == "boolean-first"
    dim = next(iter(system.relation.schema.boolean_dims))
    with pytest.raises(ValueError, match="boolean-first"):
        session.drill_down(degraded, dim, system.relation.bool_value(0, dim))


# ---------------------------------------------------------------------- #
# breakers wired into serving
# ---------------------------------------------------------------------- #


def test_open_breaker_short_circuits_without_reprobing(faulty, rng):
    disk, system = faulty
    predicate = sample_predicate(system.relation, 1, rng)
    serial = system.engine.skyline(predicate)
    disk.plan = FaultPlan(
        [FaultRule(kind="corrupt", tag="pcube:sig", count=1)]
    )
    with QueryExecutor(
        system, threads=1, resilience=Resilience(breaker_threshold=1)
    ) as executor:
        first = executor.skyline(predicate).result(timeout=30.0)
        assert first.tids == serial.tids
        assert first.stats.failed_loads >= 1
        assert first.stats.tier == "conservative"
        assert executor.breakers.open_count() == 1
        probes_before = system.pcube.store.fault_stats.degraded_loads

        second = executor.skyline(predicate).result(timeout=30.0)
        assert second.tids == serial.tids
        assert second.stats.breaker_skips >= 1
        assert second.stats.failed_loads == 0  # zero I/O on the bad pages
        assert second.stats.tier == "conservative"
        assert (
            system.pcube.store.fault_stats.degraded_loads == probes_before
        )
        board = executor.breakers.snapshot()
    assert board["short_circuits"] >= 1
    stats = executor.stats.snapshot()
    assert stats["breaker_skips"] >= 1
    assert stats["tiers"]["conservative"] == 2


def test_cell_rebuild_hook_closes_breakers_live(faulty, rng):
    disk, system = faulty
    predicate = sample_predicate(system.relation, 1, rng)
    serial = system.engine.skyline(predicate)
    disk.plan = FaultPlan(
        [FaultRule(kind="corrupt", tag="pcube:sig", count=1)]
    )
    with QueryExecutor(
        system, threads=1, resilience=Resilience(breaker_threshold=1)
    ) as executor:
        executor.skyline(predicate).result(timeout=30.0)
        assert executor.breakers.open_count() == 1
        disk.plan = FaultPlan()
        assert system.pcube.rebuild_quarantined()
        # clear_quarantine fires on_cell_rebuilt -> BreakerBoard.reset.
        assert executor.breakers.open_count() == 0
        # A new epoch is not even needed: the next query probes and wins.
        system.insert(
            tuple(0 for _ in range(system.relation.schema.n_boolean)),
            tuple(0.5 for _ in range(system.relation.schema.n_preference)),
        )
        healed = executor.skyline(predicate).result(timeout=30.0)
    assert healed.stats.tier == "signature"
    assert not healed.stats.degraded
    assert healed.tids == system.engine.skyline(predicate).tids
    assert serial.tids  # the workload was not vacuous


def test_epoch_publish_half_opens_and_heals_snapshot_breakers(faulty, rng):
    """Without the rebuild hook, an open breaker heals through the epoch
    path: the first query of a newer published epoch probes the rebuilt
    pages and closes the breaker."""
    disk, system = faulty
    predicate = sample_predicate(system.relation, 1, rng)
    disk.plan = FaultPlan(
        [FaultRule(kind="corrupt", tag="pcube:sig", count=1)]
    )
    with QueryExecutor(
        system, threads=1, resilience=Resilience(breaker_threshold=1)
    ) as executor:
        executor.skyline(predicate).result(timeout=30.0)
        assert executor.breakers.open_count() == 1

        # Repair the pages but suppress the live-reset hook, so only the
        # epoch comparison can heal the breaker.
        disk.plan = FaultPlan()
        system.pcube.store.on_cell_rebuilt = None
        try:
            assert system.pcube.rebuild_quarantined()
        finally:
            system.pcube.store.on_cell_rebuilt = executor.breakers.reset
        assert executor.breakers.open_count() == 1  # hook was detached

        # Same epoch: still short-circuiting.
        stale = executor.skyline(predicate).result(timeout=30.0)
        assert stale.stats.breaker_skips >= 1

        # Publish a new epoch; its first query half-opens, probes, heals.
        system.insert(
            tuple(0 for _ in range(system.relation.schema.n_boolean)),
            tuple(0.5 for _ in range(system.relation.schema.n_preference)),
        )
        healed = executor.skyline(predicate).result(timeout=30.0)
        assert healed.stats.tier == "signature"
        assert not healed.stats.degraded
        assert executor.breakers.open_count() == 0
        board = executor.breakers.snapshot()
    assert board["half_open_probes"] >= 1
    assert board["healed"] >= 1
    assert healed.tids == system.engine.skyline(predicate).tids


# ---------------------------------------------------------------------- #
# the operator view
# ---------------------------------------------------------------------- #


def test_health_report_bundles_fault_breaker_and_quarantine_state(faulty, rng):
    disk, system = faulty
    predicate = sample_predicate(system.relation, 1, rng)
    disk.plan = FaultPlan(
        [FaultRule(kind="corrupt", tag="pcube:sig", count=1)]
    )
    with QueryExecutor(system, threads=1) as executor:
        executor.skyline(predicate).result(timeout=30.0)
        health = executor.health()
    assert health["workers"] == 1
    assert health["epoch"] == system.epochs.current_epoch
    assert health["serving"]["completed"] == 1
    assert health["faults"]["quarantines"] == 1
    assert health["faults"]["degraded_loads"] >= 1
    assert health["quarantined_cells"]  # the corrupt cell awaits rebuild
    assert health["breakers"]["threshold"] == 3
    degraded = Resilience(breaker_threshold=0)
    with QueryExecutor(system, threads=1, resilience=degraded) as executor:
        assert executor.health()["breakers"] is None
