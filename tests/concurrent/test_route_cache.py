"""ResultCache invalidation under randomized maintenance/read interleavings.

The cache's soundness claim (DESIGN.md §12) is structural: entries are
keyed by epoch and a snapshot's contents are fully determined by its
epoch, so a stale hit is impossible *by construction* — ``on_epoch`` is
memory reclamation, not correctness.  These tests attack that claim the
only way it can fail in practice: interleaving maintenance commits
(which publish epochs) with routed reads (which populate and hit the
cache), in randomized single-threaded schedules and in genuinely
threaded ones, and requiring every routed answer — hit, miss or
recomputation — to be byte-identical to the serial answer for its
epoch.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.data.workload import sample_linear_function, sample_predicate
from repro.query.session import QuerySession
from repro.route import QueryRouter

pytestmark = [pytest.mark.concurrent, pytest.mark.routing]


def _templates(system, rng, n=5):
    """A small, repeat-heavy query set (repeats are what caches are for)."""
    relation = system.relation
    dims = relation.schema.n_preference
    templates = []
    for index in range(n):
        predicate = sample_predicate(relation, 1 + index % 2, rng)
        if index % 2 == 0:
            templates.append(("skyline", {"predicate": predicate}))
        else:
            templates.append(
                (
                    "topk",
                    {
                        "fn": sample_linear_function(dims, rng),
                        "k": 5,
                        "predicate": predicate,
                    },
                )
            )
    return templates


def _serial_answer(snapshot, kind, kwargs):
    """Ground truth for one (epoch, query): an unrouted session."""
    result = getattr(QuerySession.for_snapshot(snapshot), kind)(**kwargs)
    scores = (
        None
        if result.scores is None
        else sorted(round(score, 9) for score in result.scores)
    )
    return sorted(result.tids), scores


def _routed_answer(result):
    scores = (
        None
        if result.scores is None
        else sorted(round(score, 9) for score in result.scores)
    )
    return sorted(result.tids), scores


def _mutate(system, rng, spawned):
    """One maintenance commit → one published epoch."""
    schema = system.relation.schema
    choice = rng.random()
    if choice < 0.5 or not spawned:
        bool_row = tuple(0 for _ in range(schema.n_boolean))
        point = tuple(rng.random() for _ in range(schema.n_preference))
        tid, _ = system.insert(bool_row, point)
        spawned.append(tid)
    elif choice < 0.75:
        point = tuple(rng.random() for _ in range(schema.n_preference))
        system.update(spawned[-1], point)
    else:
        system.delete(spawned.pop(0))


@pytest.mark.parametrize("seed", [3, 17, 91])
def test_randomized_commit_read_interleaving(fresh_system, seed):
    """Random schedule of {commit, read}: every routed answer — hit or
    miss — is byte-identical to the serial answer at its epoch, and dead
    epochs' entries are reclaimed as reads observe newer epochs."""
    system = fresh_system(n_tuples=400, seed=29)
    system.enable_epochs()
    rng = random.Random(seed)
    templates = _templates(system, rng)
    router = QueryRouter.for_system(system)

    # Per-epoch ground truth, computed lazily (and serially) on first use.
    serial: dict[tuple[int, int], tuple] = {}
    spawned: list[int] = []
    hits = 0
    for _ in range(60):
        if rng.random() < 0.3:
            _mutate(system, rng, spawned)
            continue
        index = rng.randrange(len(templates))
        kind, kwargs = templates[index]
        snapshot = system.pin_snapshot()
        try:
            key = (snapshot.epoch, index)
            if key not in serial:
                serial[key] = _serial_answer(snapshot, kind, kwargs)
            session = QuerySession.for_snapshot(snapshot)
            result = router.route(session, kind, **kwargs)
            assert _routed_answer(result) == serial[key], (
                f"{kind} (outcome={result.stats.cache_outcome}) diverged "
                f"from the serial epoch-{snapshot.epoch} answer"
            )
            assert result.stats.epoch == snapshot.epoch
            if result.stats.cache_outcome == "hit":
                hits += 1
                # A hit is provably from this epoch: the key embeds it.
                assert result.stats.route is not None
            # Reclamation invariant: after this read, no cached entry is
            # older than the newest epoch any read has observed.
            newest = max(k[0] for k in serial)
            assert all(k[0] >= newest for k in router.cache._entries), (
                "on_epoch left entries from a dead epoch in the cache"
            )
        finally:
            system.unpin_snapshot(snapshot)

    stats = router.stats.snapshot()
    cache = router.cache.snapshot()
    # Exact reconciliation: every routed query was a hit or was served.
    assert stats["routed"] == stats["cache_hits"] + sum(
        stats["served_by"].values()
    )
    assert stats["cache_hits"] == hits
    assert cache["hits"] == hits
    # The schedule repeats templates at stable epochs, so some must hit,
    # and epoch publishes must have reclaimed some dead entries.
    assert hits > 0
    assert cache["invalidated"] > 0


def test_publish_invalidates_exactly_the_dead_epochs(fresh_system):
    """After maintenance publishes epoch E+1, a read at E+1 misses (new
    key), recomputes the *new* answer, and drops the E entries."""
    system = fresh_system(n_tuples=300, seed=41)
    system.enable_epochs()
    rng = random.Random(7)
    templates = _templates(system, rng, n=3)
    router = QueryRouter.for_system(system)

    first = system.pin_snapshot()
    session = QuerySession.for_snapshot(first)
    for kind, kwargs in templates:
        router.route(session, kind, **kwargs)
    apex_before = _routed_answer(router.route(session, "skyline"))
    assert len(router.cache) == len(templates) + 1

    # Maintenance: the origin point dominates everything → answers change.
    schema = system.relation.schema
    system.insert(
        tuple(0 for _ in range(schema.n_boolean)),
        tuple(0.0 for _ in range(schema.n_preference)),
    )
    second = system.pin_snapshot()
    assert second.epoch > first.epoch

    fresh = QuerySession.for_snapshot(second)
    for kind, kwargs in templates:
        result = router.route(fresh, kind, **kwargs)
        assert result.stats.cache_outcome == "miss"  # epoch-keyed: no hit
        assert _routed_answer(result) == _serial_answer(
            second, kind, kwargs
        )
    # The origin point dominates everything, so the apex skyline *must*
    # differ — and the router must serve the new bytes, not the cached old.
    apex_after = router.route(fresh, "skyline")
    assert apex_after.stats.cache_outcome == "miss"
    assert _routed_answer(apex_after) != apex_before
    # The first epoch's entries are gone; only the new epoch's remain.
    assert all(key[0] == second.epoch for key in router.cache._entries)
    assert router.cache.snapshot()["invalidated"] >= len(templates)

    system.unpin_snapshot(first)
    system.unpin_snapshot(second)


def test_threaded_readers_share_cache_under_churn(fresh_system):
    """Readers on pinned snapshots share one router/cache while a writer
    publishes epochs: every answer matches the serial answer for the
    reader's own epoch, and the router's counters reconcile exactly."""
    system = fresh_system(n_tuples=500, seed=53)
    system.enable_epochs()
    rng = random.Random(13)
    templates = _templates(system, rng)
    router = QueryRouter.for_system(system)
    errors: list[str] = []
    serial_lock = threading.Lock()
    serial: dict[tuple[int, int], tuple] = {}

    def reader(reader_id: int):
        try:
            for _ in range(4):
                snapshot = system.pin_snapshot()
                try:
                    session = QuerySession.for_snapshot(snapshot)
                    for index, (kind, kwargs) in enumerate(templates):
                        key = (snapshot.epoch, index)
                        with serial_lock:
                            if key not in serial:
                                serial[key] = _serial_answer(
                                    snapshot, kind, kwargs
                                )
                            expected = serial[key]
                        result = router.route(session, kind, **kwargs)
                        if _routed_answer(result) != expected:
                            errors.append(
                                f"reader {reader_id} query {index} "
                                f"(outcome={result.stats.cache_outcome}) "
                                f"diverged at epoch {snapshot.epoch}"
                            )
                finally:
                    system.unpin_snapshot(snapshot)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(f"reader {reader_id}: {exc!r}")

    def writer():
        try:
            spawned: list[int] = []
            wrng = random.Random(99)
            for _ in range(10):
                _mutate(system, wrng, spawned)
        except Exception as exc:  # pragma: no cover
            errors.append(f"writer: {exc!r}")

    threads = [threading.Thread(target=reader, args=(i,)) for i in range(4)]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
        assert not thread.is_alive(), "route-cache stress thread hung"

    assert errors == []
    stats = router.stats.snapshot()
    assert stats["routed"] == 4 * 4 * len(templates)
    assert stats["routed"] == stats["cache_hits"] + sum(
        stats["served_by"].values()
    )
    cache = router.cache.snapshot()
    assert cache["hits"] == stats["cache_hits"]
    # Quiesced: the system audits clean and pins are all released.
    assert system.epochs.pinned_epochs() == {}
    assert system.verify_consistency().ok
