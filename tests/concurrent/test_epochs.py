"""Epoch manager semantics: pinning, publishing, abandonment, reclamation."""

from __future__ import annotations

import pytest

from repro.query.session import QuerySession

pytestmark = pytest.mark.concurrent


def _origin_rows(system):
    schema = system.relation.schema
    return (
        tuple(0 for _ in range(schema.n_boolean)),
        tuple(0.0 for _ in range(schema.n_preference)),
    )


def test_pinned_snapshot_survives_maintenance(fresh_system):
    system = fresh_system()
    system.enable_epochs()
    snapshot = system.pin_snapshot()
    before = QuerySession.for_snapshot(snapshot).skyline()

    # The origin tuple dominates everything, so the live skyline changes...
    bool_row, pref_row = _origin_rows(system)
    system.insert(bool_row, pref_row)
    live = system.engine.skyline()
    assert live.tids != before.tids

    # ...while the pinned epoch keeps answering with the old data, exactly.
    after = QuerySession.for_snapshot(snapshot).skyline()
    assert after.tids == before.tids
    assert after.scores == before.scores
    assert after.stats.epoch == snapshot.epoch
    system.unpin_snapshot(snapshot)


def test_each_maintenance_op_publishes_one_epoch(fresh_system):
    system = fresh_system()
    epochs = system.enable_epochs()
    start = epochs.current_epoch
    bool_row, pref_row = _origin_rows(system)
    tid, _ = system.insert(bool_row, pref_row)
    assert epochs.current_epoch == start + 1
    system.update(tid, tuple(0.5 for _ in pref_row))
    assert epochs.current_epoch == start + 2
    system.delete(tid)
    assert epochs.current_epoch == start + 3
    assert epochs.stats.published == start + 3  # initial + three ops


def test_enable_epochs_is_idempotent(fresh_system):
    system = fresh_system()
    assert system.enable_epochs() is system.enable_epochs()


def test_pin_requires_enablement(fresh_system):
    system = fresh_system()
    with pytest.raises(RuntimeError, match="enable_epochs"):
        system.pin_snapshot()


def test_abandoned_write_is_invisible_to_snapshots(fresh_system):
    system = fresh_system()
    epochs = system.enable_epochs()
    snapshot = epochs.pin()
    before = QuerySession.for_snapshot(snapshot).skyline()
    victim = before.tids[0]

    class Boom(RuntimeError):
        pass

    with pytest.raises(Boom):
        with epochs.write():
            # Half-applied mutation, then a crash before publish.
            system.relation.tombstone(victim)
            raise Boom()

    assert epochs.stats.abandoned == 1
    assert epochs.current_epoch == snapshot.epoch
    # The tombstone was stamped with the abandoned building epoch, so the
    # pinned snapshot — and any *new* snapshot — still sees the tuple.
    assert snapshot.relation.is_live(victim)
    again = QuerySession.for_snapshot(snapshot).skyline()
    assert again.tids == before.tids
    epochs.unpin(snapshot)


def test_deferred_frees_wait_for_pinned_readers(fresh_system):
    system = fresh_system()
    epochs = system.enable_epochs()
    snapshot = system.pin_snapshot()
    reference = QuerySession.for_snapshot(snapshot).skyline()

    # Structural churn: rewrites free R-tree and signature pages.
    bool_row, pref_row = _origin_rows(system)
    for _ in range(4):
        tid, _ = system.insert(bool_row, pref_row)
        system.delete(tid)
    assert epochs.deferred_free_count() > 0

    # The pinned reader still traverses the old pages without a fault.
    replay = QuerySession.for_snapshot(snapshot).skyline()
    assert replay.tids == reference.tids

    system.unpin_snapshot(snapshot)
    assert epochs.deferred_free_count() == 0
    assert epochs.stats.reclaimed_pages > 0


def test_version_maps_prune_on_publish_not_on_unpin(fresh_system):
    """Version-map pruning is writer-path only: unpin must never touch
    the relation's version maps (they race with the maintenance writer),
    so records drop at the next publish after the horizon advances."""
    system = fresh_system()
    epochs = system.enable_epochs()
    snapshot = epochs.pin()

    bool_row, pref_row = _origin_rows(system)
    tid, _ = system.insert(bool_row, pref_row)  # created_epoch record
    system.delete(tid)  # tombstone record
    assert epochs.stats.pruned_versions == 0  # pinned reader blocks pruning

    epochs.unpin(snapshot)
    # Unpin records the horizon but does not prune (reader thread).
    assert epochs.stats.pruned_versions == 0

    system.insert(bool_row, pref_row)  # next publish prunes behind horizon
    assert epochs.stats.pruned_versions > 0


def test_unpin_without_pin_raises(fresh_system):
    system = fresh_system()
    epochs = system.enable_epochs()
    snapshot = epochs.pin()
    epochs.unpin(snapshot)
    with pytest.raises(ValueError, match="not pinned"):
        epochs.unpin(snapshot)


def test_pinned_epochs_bookkeeping(fresh_system):
    system = fresh_system()
    epochs = system.enable_epochs()
    first = epochs.pin()
    second = epochs.pin()
    assert epochs.pinned_epochs() == {first.epoch: 2}
    epochs.unpin(first)
    assert epochs.pinned_epochs() == {second.epoch: 1}
    epochs.unpin(second)
    assert epochs.pinned_epochs() == {}


def test_maintenance_unchanged_without_epochs(fresh_system):
    """The default path stays paper-comparable: no epochs, no deferral."""
    system = fresh_system()
    assert system.epochs is None
    bool_row, pref_row = _origin_rows(system)
    tid, _ = system.insert(bool_row, pref_row)
    system.delete(tid)
    assert system.verify_consistency().ok
