"""Chaos harness: seeded fault storms against the concurrent executor.

The serving resilience contract under concurrent load (ISSUE: resilient
serving): with transient faults, permanent corruption, latency spikes and
tight deadlines all firing at once,

* every submitted ticket *resolves* — with an exact answer or a typed
  error — within a bounded wait (zero hangs, zero abandoned waiters);
* every answer that is produced is byte-identical to the serial engine's
  fault-free answer for the same query, whatever tier produced it;
* after the storm passes, rebuilding the quarantine backlog returns the
  system to a clean consistency audit and fault-free serving.

Everything is seeded: the data, the workload, the fault plan.  Runs are
replayable modulo thread interleaving, so the assertions are invariants
(exact-or-typed, audit-clean), not exact fault counts.
"""

from __future__ import annotations

import random

import pytest

from repro.data.synthetic import generate_relation
from repro.data.workload import sample_linear_function, sample_predicate
from repro.serve.executor import (
    AdmissionFull,
    QueryCancelled,
    QueryExecutor,
    QueryShed,
    QueryTimeout,
)
from repro.storage.disk import SimulatedDisk
from repro.storage.errors import StorageFault
from repro.storage.faults import FaultPlan, FaultRule, FaultyDisk
from repro.system import build_system

pytestmark = [pytest.mark.concurrent, pytest.mark.chaos]

#: The only ways a ticket may fail under chaos.  Anything else (deadlock,
#: AssertionError, a worker crash surfacing as RuntimeError) is a bug.
TYPED_ERRORS = (QueryShed, QueryTimeout, QueryCancelled, StorageFault)


@pytest.fixture
def chaotic(small_config):
    """A built system over a fault-injecting disk, armed after the build."""
    disk = FaultyDisk(SimulatedDisk())
    system = build_system(
        generate_relation(small_config, disk=disk), fanout=8
    )
    return disk, system


def _workload(system, rng: random.Random, n_queries: int):
    """A seeded mixed workload: (kind, kwargs) pairs, engine-replayable."""
    relation = system.relation
    dims = relation.schema.n_preference
    workload = []
    for index in range(n_queries):
        predicate = sample_predicate(relation, 1 + index % 2, rng)
        kind = ("skyline", "topk", "skyline", "dynamic_skyline")[index % 4]
        if kind == "topk":
            workload.append(
                (
                    "topk",
                    {
                        "fn": sample_linear_function(dims, rng),
                        "k": 10,
                        "predicate": predicate,
                    },
                )
            )
        elif kind == "dynamic_skyline":
            workload.append(
                (
                    "dynamic_skyline",
                    {
                        "query_point": [rng.random() for _ in range(dims)],
                        "predicate": predicate,
                    },
                )
            )
        else:
            workload.append(("skyline", {"predicate": predicate}))
    return workload


def _storm_plan(tag: str, seed: int) -> FaultPlan:
    """Transient bursts + two permanent corruptions + latency spikes."""
    return FaultPlan(
        [
            FaultRule(
                kind="transient", tag=f"{tag}:sig", probability=0.35, count=24
            ),
            FaultRule(kind="corrupt", tag=f"{tag}:sig", after=6, count=1),
            FaultRule(kind="corrupt", tag="rtree", after=40, count=1),
            FaultRule(
                kind="slow", probability=0.1, count=20, delay=0.005
            ),
        ],
        seed=seed,
    )


def _resolve(tickets, serial, workload):
    """Wait out every ticket; classify outcomes; fail on non-typed errors.

    The bounded ``result(timeout=...)`` is the zero-hang assertion: a
    ticket that never resolves raises ``TimeoutError``, which is not in
    ``TYPED_ERRORS`` and fails the test.
    """
    outcomes = {"completed": 0, "typed": 0}
    for index, ticket in enumerate(tickets):
        if ticket is None:  # rejected at admission
            continue
        try:
            result = ticket.result(timeout=60.0)
        except TYPED_ERRORS:
            outcomes["typed"] += 1
            continue
        reference = serial[index]
        kind = workload[index][0]
        assert result.tids == reference.tids, f"query {index} ({kind})"
        assert result.scores == reference.scores, f"query {index} ({kind})"
        outcomes["completed"] += 1
    return outcomes


def test_fault_storm_every_ticket_resolves_exact_or_typed(chaotic, rng):
    disk, system = chaotic
    workload = _workload(system, rng, 24)
    serial = [
        getattr(system.engine, kind)(**kwargs) for kind, kwargs in workload
    ]

    disk.plan = _storm_plan(system.pcube.tag, seed=20080401)
    with QueryExecutor(
        system, threads=4, queue_depth=8, default_deadline=30.0
    ) as executor:
        tickets = []
        for index, (kind, kwargs) in enumerate(workload):
            # Every fourth query gets a deadline it cannot possibly meet
            # while the queue is contended: shed/timeout pressure.
            deadline = 0.002 if index % 4 == 3 else 30.0
            try:
                tickets.append(
                    executor.submit(
                        kind,
                        _runner(kind, kwargs),
                        deadline=deadline,
                    )
                )
            except AdmissionFull as exc:
                assert exc.retry_after >= 0.0
                tickets.append(None)
        outcomes = _resolve(tickets, serial, workload)
        for ticket in tickets:
            assert ticket is None or ticket.done()

    stats = executor.stats.snapshot()
    assert outcomes["completed"] >= 1  # the storm did not take serving down
    assert stats["completed"] + stats["failed"] == stats["submitted"]
    assert sum(disk.fault_counts.values()) > 0  # the storm actually fired
    # Retries/degradation were exercised and accounted end to end.  The
    # store's counter also covers queries that later failed or fell back
    # (their per-query stats never reach the aggregate), so it bounds the
    # serving-side tally from above.
    faults = system.pcube.store.fault_stats.snapshot()
    assert faults["retries"] >= stats["fault_retries"] >= 0
    assert stats["tiers"]  # every completed query carries a tier stamp
    assert sum(stats["tiers"].values()) == stats["completed"]


def _runner(kind, kwargs):
    """Build the session callable ``submit`` expects for one workload row."""

    def run(session):
        return getattr(session, kind)(**kwargs)

    return run


def test_storm_then_heal_returns_to_clean_fault_free_serving(chaotic, rng):
    """Phase B: serve through a storm alongside maintenance churn (with a
    torn write), then heal — rebuild quarantined cells, audit, and verify
    fault-free byte-identical serving at the new epoch."""
    disk, system = chaotic
    schema = system.relation.schema
    predicate = sample_predicate(system.relation, 1, rng)
    zeros = tuple(0 for _ in range(schema.n_boolean))

    disk.plan = FaultPlan(
        [
            FaultRule(
                kind="transient", tag=f"{system.pcube.tag}:sig",
                probability=0.4, count=12,
            ),
            FaultRule(kind="corrupt", tag=f"{system.pcube.tag}:sig", count=1),
            FaultRule(
                kind="torn", op="allocate", tag=f"{system.pcube.tag}:sig",
                after=2, count=1,
            ),
        ],
        seed=11,
    )
    with QueryExecutor(system, threads=2, queue_depth=16) as executor:
        tickets = [executor.skyline(predicate) for _ in range(6)]
        # Maintenance churn under write faults: a torn allocation aborts
        # one insert mid-rewrite; recovery must roll it forward or back.
        for step in range(4):
            point = tuple(
                0.2 + 0.1 * step for _ in range(schema.n_preference)
            )
            try:
                system.insert(zeros, point)
            except StorageFault:
                system.recover()
        for ticket in tickets:
            try:
                ticket.result(timeout=60.0)
            except TYPED_ERRORS:
                pass

        # The storm has passed: heal and verify from inside the executor,
        # which must observe the repaired epoch.
        disk.plan = FaultPlan()
        system.pcube.rebuild_quarantined()
        system.insert(zeros, tuple(0.9 for _ in range(schema.n_preference)))
        healed = executor.skyline(predicate).result(timeout=60.0)

    assert not system.pcube.store.quarantined_cells()
    audit = system.verify_consistency()
    assert audit.ok, audit.problems
    reference = system.engine.skyline(predicate)
    assert healed.tids == reference.tids
    assert healed.stats.tier == "signature"
    assert not healed.stats.degraded
    assert healed.stats.epoch == system.epochs.current_epoch
