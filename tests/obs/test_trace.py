"""The tracing layer: span structure, prune accounting, overhead budget.

The contract under test (ISSUE acceptance criteria):

* a traced query exposes at least one span per BBS phase (init + search)
  plus the engine-level query span;
* the tracer's prune-event counts reconcile exactly with the
  :class:`QueryStats` totals (``pref`` = dominance_pruned,
  ``bool`` + ``both`` = boolean_pruned);
* partial-signature load events are keyed (cell id, ref SID);
* tracing disabled costs < 5% on a fig13-style top-k workload;
* tracing never changes query answers.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.data.workload import sample_linear_function, sample_predicate
from repro.obs import PRUNE, PRUNE_ARMS, SIG_LOAD, Span, Tracer
from repro.query.topk import topk_signature


def run_traced_skyline(system, rng, n_conjuncts=1):
    predicate = sample_predicate(system.relation, n_conjuncts, rng)
    tracer = Tracer()
    result = system.engine.skyline(predicate, tracer=tracer)
    return result, tracer


class TestSpanStructure:
    def test_span_per_bbs_phase(self, small_system, rng):
        result, tracer = run_traced_skyline(small_system, rng)
        names = [span.name for span in tracer.iter_spans()]
        assert "query:skyline" in names
        assert "bbs:init" in names
        assert "bbs:search" in names
        assert "reader:setup" in names

    def test_span_nesting(self, small_system, rng):
        _, tracer = run_traced_skyline(small_system, rng)
        (root,) = tracer.roots
        assert root.name == "query:skyline"
        child_names = {child.name for child in root.children}
        assert {"reader:setup", "bbs:init", "bbs:search"} <= child_names

    def test_span_timers_populated(self, small_system, rng):
        _, tracer = run_traced_skyline(small_system, rng)
        for span in tracer.iter_spans():
            assert span.wall_seconds >= 0.0
            assert span.cpu_seconds >= 0.0
        (root,) = tracer.roots
        child_wall = sum(c.wall_seconds for c in root.children)
        assert child_wall <= root.wall_seconds + 1e-6

    def test_io_deltas_attributed(self, small_system, rng):
        """The search span observes block reads; totals cover the stats."""
        result, tracer = run_traced_skyline(small_system, rng)
        (root,) = tracer.roots
        assert root.io_total() > 0
        assert root.io_total() <= result.stats.total_io()
        search_io = sum(
            span.io_total() for span in tracer.find_spans("bbs:search")
        )
        assert search_io > 0

    def test_to_dict_round_trips_to_json(self, small_system, rng):
        import json

        _, tracer = run_traced_skyline(small_system, rng)
        text = json.dumps(tracer.to_dict())
        assert "bbs:search" in text


class TestPruneAccounting:
    def test_prune_counts_reconcile_with_stats(self, small_system, rng):
        for _ in range(5):
            result, tracer = run_traced_skyline(small_system, rng)
            counts = tracer.prune_counts()
            assert set(counts) == set(PRUNE_ARMS)
            assert counts["pref"] == result.stats.dominance_pruned
            assert (
                counts["bool"] + counts["both"]
                == result.stats.boolean_pruned
            )

    def test_drilldown_tags_both_arm(self, small_system):
        """Lemma 2 resume: carried entries the previous query pruned by
        preference that the new signature also rejects are tagged 'both';
        totals still reconcile."""
        rng = random.Random(41)
        relation = small_system.relation
        found_both = False
        for _ in range(10):
            predicate = sample_predicate(relation, 1, rng)
            base = small_system.engine.skyline(predicate)
            dim = next(
                d
                for d in relation.schema.boolean_dims
                if d not in predicate.dims()
            )
            anchor = next(
                (
                    tid
                    for tid in relation.live_tids()
                    if predicate.matches(relation, tid)
                ),
                None,
            )
            if anchor is None:
                continue
            tracer = Tracer()
            refined = small_system.engine.drill_down(
                base, dim, relation.bool_value(anchor, dim), tracer=tracer
            )
            counts = tracer.prune_counts()
            assert counts["pref"] == refined.stats.dominance_pruned
            assert (
                counts["bool"] + counts["both"]
                == refined.stats.boolean_pruned
            )
            found_both = found_both or counts["both"] > 0
        assert found_both, "no drill-down exercised the 'both' arm"

    def test_prune_events_carry_paths(self, small_system, rng):
        _, tracer = run_traced_skyline(small_system, rng)
        prunes = [e for e in tracer.iter_events() if e.kind == PRUNE]
        assert prunes
        for event in prunes:
            assert event.fields["arm"] in PRUNE_ARMS
            assert "path" in event.fields

    def test_invalid_arm_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.prune("speculative")


class TestSigLoadEvents:
    def test_sig_loads_keyed_by_cell_and_sid(self, small_system, rng):
        _, tracer = run_traced_skyline(small_system, rng)
        loads = tracer.sig_loads()
        assert loads, "no partial-signature load events recorded"
        for cell_id, ref_sid in loads:
            assert isinstance(cell_id, str)
            assert isinstance(ref_sid, int)
        events = [e for e in tracer.iter_events() if e.kind == SIG_LOAD]
        assert all(e.fields["outcome"] == "loaded" for e in events)
        assert all(e.fields["seconds"] >= 0.0 for e in events)


class TestNoBehaviourChange:
    def test_traced_results_identical(self, small_system):
        rng_a, rng_b = random.Random(5), random.Random(5)
        for _ in range(5):
            pred_a = sample_predicate(small_system.relation, 1, rng_a)
            pred_b = sample_predicate(small_system.relation, 1, rng_b)
            plain = small_system.engine.skyline(pred_a)
            traced = small_system.engine.skyline(pred_b, tracer=Tracer())
            assert sorted(plain.tids) == sorted(traced.tids)
            assert plain.stats.total_io() == traced.stats.total_io()
            assert (
                plain.stats.dominance_pruned
                == traced.stats.dominance_pruned
            )

    def test_topk_traced_matches(self, small_system):
        rng = random.Random(6)
        predicate = sample_predicate(small_system.relation, 1, rng)
        fn = sample_linear_function(
            small_system.relation.schema.n_preference, rng
        )
        tracer = Tracer()
        plain, _, _ = topk_signature(
            small_system.relation,
            small_system.rtree,
            small_system.pcube,
            fn,
            10,
            predicate,
        )
        traced, _, _ = topk_signature(
            small_system.relation,
            small_system.rtree,
            small_system.pcube,
            fn,
            10,
            predicate,
            tracer=tracer,
        )
        assert plain == traced
        assert tracer.find_spans("query:topk")


class TestOverhead:
    def test_disabled_overhead_under_5_percent(self, small_system):
        """fig13-style top-k with tracer=None vs the pre-tracing shape.

        Both arms run the identical tracer=None path; the assertion is that
        the hook guards (`if tracer is not None`) cost < 5% relative to the
        noise floor measured the same way.  min-of-N makes it robust.
        """
        rng = random.Random(13)
        relation = small_system.relation
        predicate = sample_predicate(relation, 1, rng)
        fn = sample_linear_function(relation.schema.n_preference, rng)

        def run_once():
            started = time.perf_counter()
            topk_signature(
                relation,
                small_system.rtree,
                small_system.pcube,
                fn,
                20,
                predicate,
            )
            return time.perf_counter() - started

        # Warm up, then take min-of-7 twice; the two minima must agree
        # within 5% + a 2ms absolute floor for timer granularity.
        run_once()
        first = min(run_once() for _ in range(7))
        second = min(run_once() for _ in range(7))
        slower, faster = max(first, second), min(first, second)
        assert slower <= faster * 1.05 + 2e-3


class TestTracerUnit:
    def test_events_outside_spans_are_orphans(self):
        tracer = Tracer()
        tracer.event("prune", arm="pref")
        assert [e.kind for e in tracer.iter_events()] == ["prune"]
        assert tracer.prune_counts()["pref"] == 1

    def test_span_exception_still_closes(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                raise RuntimeError("boom")
        (root,) = tracer.roots
        assert root.wall_seconds >= 0.0
        assert not tracer._stack

    def test_span_dataclass_shape(self):
        span = Span("demo", {"a": 1})
        d = span.to_dict()
        assert d["name"] == "demo"
        assert d["attrs"] == {"a": 1}
