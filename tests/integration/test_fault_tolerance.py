"""Acceptance: seeded fault schedules never change query answers.

The robustness contract (ISSUE: fault-injecting storage layer): under a
deterministic schedule mixing transient read faults with permanent page
corruption, top-k and skyline results are byte-identical to the fault-free
run, the degraded/retry counters are nonzero, and after rebuilding the
quarantined cells the per-query ``SSIG`` cost returns to the fault-free
baseline (within 5%).
"""

import pytest

from repro.data.synthetic import generate_relation
from repro.data.workload import sample_linear_function, sample_predicate
from repro.storage.disk import SimulatedDisk
from repro.storage.faults import FaultPlan, FaultRule, FaultyDisk
from repro.system import build_system

pytestmark = pytest.mark.faults


@pytest.fixture
def faulty_twin(small_config):
    """A second system, identical to ``small_system`` by construction, on a
    fault-injecting disk armed *after* the build."""
    disk = FaultyDisk(SimulatedDisk())
    system = build_system(generate_relation(small_config, disk=disk), fanout=8)
    return disk, system


def fault_schedule():
    return FaultPlan(
        [
            # Two consecutive transient faults on the first signature read:
            # absorbed by one load's retry budget (max_attempts=4).
            FaultRule(kind="transient", tag="pcube:sig", count=2),
            # An access that fires a rule is not offered to later rules, so
            # this sees only fault-free reads: its second one is corrupted.
            FaultRule(kind="corrupt", tag="pcube:sig", after=1, count=1),
        ],
        seed=7,
    )


def test_results_byte_identical_under_fault_schedule(
    small_system, faulty_twin, rng
):
    disk, faulty = faulty_twin
    predicate = sample_predicate(small_system.relation, 2, rng)
    fn = sample_linear_function(small_system.relation.schema.n_preference, rng)

    base_sky = small_system.engine.skyline(predicate)
    base_topk = small_system.engine.topk(fn, 10, predicate)

    disk.plan = fault_schedule()
    sky = faulty.engine.skyline(predicate)
    topk = faulty.engine.topk(fn, 10, predicate)

    # The contract: faults cost work, never answers.
    assert sky.tids == base_sky.tids
    assert topk.tids == base_topk.tids
    assert topk.scores == base_topk.scores

    # Both fault kinds actually landed and were observed.
    assert disk.fault_counts["transient"] == 2
    assert disk.fault_counts["corrupt"] == 1
    assert sky.stats.fault_retries + topk.stats.fault_retries == 2
    assert sky.stats.degraded or topk.stats.degraded
    assert sky.stats.degraded_checks + topk.stats.degraded_checks > 0
    assert faulty.pcube.store.fault_stats.degraded_loads >= 1

    # Recovery: rebuild every quarantined cell, then the degraded overhead
    # disappears and SSIG cost is back at the fault-free baseline.
    assert faulty.pcube.store.quarantined_cells()
    disk.plan = FaultPlan()
    rebuilt = faulty.pcube.rebuild_quarantined()
    assert rebuilt
    assert not faulty.pcube.store.quarantined_cells()

    healed_sky = faulty.engine.skyline(predicate)
    healed_topk = faulty.engine.topk(fn, 10, predicate)
    assert healed_sky.tids == base_sky.tids
    assert healed_topk.tids == base_topk.tids
    assert healed_topk.scores == base_topk.scores
    for healed, base in ((healed_sky, base_sky), (healed_topk, base_topk)):
        assert not healed.stats.degraded
        assert healed.stats.ssig <= base.stats.ssig * 1.05
        assert healed.stats.ssig >= base.stats.ssig * 0.95


def test_exhausted_retry_budget_degrades_but_stays_correct(
    small_system, faulty_twin, rng
):
    """A fault burst longer than the retry budget abandons the load — the
    reader degrades (conservative mode) instead of failing the query."""
    disk, faulty = faulty_twin
    predicate = sample_predicate(small_system.relation, 1, rng)
    baseline = small_system.engine.skyline(predicate)

    # Ten consecutive transient faults on signature reads: the first load's
    # four attempts all fail, marking its ref unreadable.
    disk.plan = FaultPlan(
        [FaultRule(kind="transient", tag="pcube:sig", count=10)]
    )
    result = faulty.engine.skyline(predicate)
    assert result.tids == baseline.tids
    assert result.stats.degraded
    assert result.stats.failed_loads >= 1
    assert result.stats.fault_retries >= 3
    assert faulty.pcube.store.fault_stats.transient_errors >= 1


def test_degraded_query_charges_fallback_to_dbool(
    small_system, faulty_twin, rng
):
    """Conservative mode pays for exactness with base-relation probes: the
    degraded run's DBOOL count grows, its boolean pruning shrinks."""
    disk, faulty = faulty_twin
    predicate = sample_predicate(small_system.relation, 1, rng)
    baseline = small_system.engine.skyline(predicate)

    disk.plan = FaultPlan([FaultRule(kind="corrupt", tag="pcube:sig", count=1)])
    degraded = faulty.engine.skyline(predicate)
    assert degraded.tids == baseline.tids
    assert degraded.stats.degraded
    assert degraded.stats.dbool >= baseline.stats.dbool
    assert degraded.stats.total_io() >= baseline.stats.total_io()
