"""Differential oracle: random relations × random predicates, every method.

Hypothesis generates both the relation *and* the predicate (including
predicates selecting empty subsets, all-duplicate point sets, single-tuple
relations), runs the same query through the signature engine and through
every baseline — naive, boolean-first, domination-first / ranking, and
index-merge — and requires identical answers.  On failure, hypothesis
shrinks to the minimal relation/predicate pair that still disagrees, which
is the debugging artifact this suite exists to produce.

This complements ``test_equivalence.py``: that file sweeps realistic
seeded configurations with sampled (always-satisfiable) predicates; this
one lets the fuzzer pick adversarial inputs, predicates that match
nothing included.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.boolean_first import (
    boolean_first_skyline,
    boolean_first_topk,
)
from repro.baselines.domination_first import (
    domination_first_skyline,
    ranking_topk,
)
from repro.baselines.index_merge import index_merge_topk
from repro.baselines.naive import naive_skyline, naive_topk
from repro.cube.relation import Relation
from repro.cube.schema import Schema
from repro.query.predicates import BooleanPredicate
from repro.query.ranking import LinearFunction
from repro.query.skyline import skyline_signature
from repro.query.topk import topk_signature
from repro.system import build_system

DIFFERENTIAL_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: (A, B, X, Y) rows: two boolean dims of cardinality ≤ 4, an 9×9 grid of
#: preference points (deliberately collision-heavy so duplicate points and
#: fully-dominated leaves are common).
rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=8),
    ),
    min_size=1,
    max_size=48,
)

#: 1-2 conjuncts whose values may not occur in the relation at all — the
#: empty-subset path every method must agree on.
predicate_strategy = st.dictionaries(
    keys=st.sampled_from(("A", "B")),
    values=st.integers(min_value=0, max_value=3),
    min_size=1,
    max_size=2,
)


def make_relation(rows) -> Relation:
    schema = Schema(("A", "B"), ("X", "Y"))
    return Relation(
        schema,
        [(a, b) for a, b, _, _ in rows],
        [(x / 8.0, y / 8.0) for _, _, x, y in rows],
    )


def qualifying_points(relation: Relation, predicate: BooleanPredicate):
    return [
        (tid, relation.pref_point(tid))
        for tid in relation.tids()
        if predicate.matches(relation, tid)
    ]


@DIFFERENTIAL_SETTINGS
@given(rows=rows_strategy, conjuncts=predicate_strategy)
def test_differential_skyline(rows, conjuncts):
    """Signature skyline ≡ naive ≡ boolean-first ≡ domination-first."""
    relation = make_relation(rows)
    system = build_system(relation, fanout=4)
    predicate = BooleanPredicate(conjuncts)

    expected = sorted(naive_skyline(qualifying_points(relation, predicate)))
    sig_tids, _, _ = skyline_signature(
        relation, system.rtree, system.pcube, predicate
    )
    bool_tids, _ = boolean_first_skyline(
        relation, system.indexes, predicate
    )
    dom_tids, _, _ = domination_first_skyline(
        relation, system.rtree, predicate
    )
    assert sorted(sig_tids) == expected
    assert sorted(bool_tids) == expected
    assert sorted(dom_tids) == expected


@DIFFERENTIAL_SETTINGS
@given(
    rows=rows_strategy,
    conjuncts=predicate_strategy,
    weights=st.tuples(
        st.floats(min_value=0.05, max_value=3.0),
        st.floats(min_value=0.05, max_value=3.0),
    ),
    k=st.integers(min_value=1, max_value=15),
)
def test_differential_topk(rows, conjuncts, weights, k):
    """Signature top-k ≡ naive ≡ boolean-first ≡ ranking ≡ index-merge.

    Score lists are compared (rounded to 1e-9) rather than tid lists:
    the collision-heavy grid produces score ties whose tie-break order is
    legitimately method-specific.
    """
    relation = make_relation(rows)
    system = build_system(relation, fanout=4)
    predicate = BooleanPredicate(conjuncts)
    fn = LinearFunction(weights)

    expected = [
        round(score, 9)
        for _, score in naive_topk(
            qualifying_points(relation, predicate), fn, k
        )
    ]
    ranked_sig, _, _ = topk_signature(
        relation, system.rtree, system.pcube, fn, k, predicate
    )
    ranked_bool, _ = boolean_first_topk(
        relation, system.indexes, fn, k, predicate
    )
    ranked_rank, _, _ = ranking_topk(
        relation, system.rtree, fn, k, predicate
    )
    ranked_merge, _ = index_merge_topk(
        relation, system.rtree, system.indexes, fn, k, predicate
    )
    for name, ranked in (
        ("signature", ranked_sig),
        ("boolean_first", ranked_bool),
        ("ranking", ranked_rank),
        ("index_merge", ranked_merge),
    ):
        scores = [round(score, 9) for _, score in ranked]
        assert scores == expected, f"{name} disagrees with naive"


@DIFFERENTIAL_SETTINGS
@given(rows=rows_strategy, conjuncts=predicate_strategy)
def test_differential_skyline_members_qualify(rows, conjuncts):
    """Every reported skyline member satisfies the predicate (no method
    may leak a tuple from outside the selected subset)."""
    relation = make_relation(rows)
    system = build_system(relation, fanout=4)
    predicate = BooleanPredicate(conjuncts)
    sig_tids, _, _ = skyline_signature(
        relation, system.rtree, system.pcube, predicate
    )
    assert all(predicate.matches(relation, tid) for tid in sig_tids)


# --------------------------------------------------------------------- #
# router mode: the same oracle through the adaptive router
# --------------------------------------------------------------------- #


def _routed_session(system):
    from repro.query.session import QuerySession

    system.enable_epochs()
    snapshot = system.pin_snapshot()
    return QuerySession.for_snapshot(snapshot)


def _expected_skyline(relation, predicate):
    return sorted(naive_skyline(qualifying_points(relation, predicate)))


@pytest.mark.routing
@DIFFERENTIAL_SETTINGS
@given(rows=rows_strategy, conjuncts=predicate_strategy)
def test_differential_router_forced_strategies(rows, conjuncts):
    """Byte-identical to naive for *every* forced engine, skyline + top-k.

    The router canonicalises (skyline tids ascending, top-k sorted by
    ``(score, tid)``), so the comparison here is exact equality on the
    canonical bytes — sorted naive tids for skylines, rounded sorted
    scores for top-k (tie membership at the k boundary is legitimately
    engine-specific, per this suite's convention).
    """
    from repro.route import STRATEGY_ORDER, QueryRouter, RoutingPolicy

    relation = make_relation(rows)
    system = build_system(relation, fanout=4)
    predicate = BooleanPredicate(conjuncts)
    session = _routed_session(system)
    fn = LinearFunction((1.0, 0.7))
    k = 5

    expected_sky = _expected_skyline(relation, predicate)
    expected_scores = [
        round(score, 9)
        for _, score in naive_topk(
            qualifying_points(relation, predicate), fn, k
        )
    ]
    for name in STRATEGY_ORDER:
        router = QueryRouter.for_system(
            system, policy=RoutingPolicy(forced=name, cache=False)
        )
        if name != "index-merge":  # top-k only
            result = router.route(session, "skyline", predicate=predicate)
            assert result.tids == expected_sky, name
            assert result.stats.route == name
        result = router.route(
            session, "topk", predicate=predicate, fn=fn, k=k
        )
        scores = [round(score, 9) for score in result.scores]
        assert sorted(scores) == sorted(expected_scores), name
        assert result.stats.route == name


@pytest.mark.routing
@DIFFERENTIAL_SETTINGS
@given(rows=rows_strategy, conjuncts=predicate_strategy)
def test_differential_router_forced_fallback(rows, conjuncts):
    """A chain whose head cannot serve still answers byte-identically.

    ``index-merge`` never answers skylines, so the adapter raises
    ``StrategyUnsupported`` and the chain degrades to naive — the answer
    must not change, and the fallback must be visible in the stats.
    """
    from repro.route import (
        ENGINES,
        FallbackExecutor,
        QueryRouter,
        RouteRequest,
        RoutingPolicy,
    )

    relation = make_relation(rows)
    system = build_system(relation, fanout=4)
    predicate = BooleanPredicate(conjuncts)
    session = _routed_session(system)
    expected = _expected_skyline(relation, predicate)

    # Bypass the static supports() filter to exercise the runtime raise.
    executor = FallbackExecutor(ENGINES)
    request = RouteRequest(kind="skyline", predicate=predicate)
    router = QueryRouter.for_system(system, policy=RoutingPolicy(cache=False))
    result, failures = executor.execute(
        ["index-merge", "naive"], session, request, router.ctx
    )
    assert [name for name, _ in failures] == ["index-merge"]
    assert result.stats.route == "naive"
    assert result.stats.fallbacks == 1
    assert sorted(result.tids) == expected


@pytest.mark.routing
@DIFFERENTIAL_SETTINGS
@given(rows=rows_strategy, conjuncts=predicate_strategy)
def test_differential_router_cache_warm_equals_cold(rows, conjuncts):
    """A cache-warm replay returns the same bytes as the cold run, and
    the adaptive cold run matches naive in the first place."""
    from repro.route import QueryRouter

    relation = make_relation(rows)
    system = build_system(relation, fanout=4)
    predicate = BooleanPredicate(conjuncts)
    session = _routed_session(system)
    expected = _expected_skyline(relation, predicate)

    router = QueryRouter.for_system(system)
    cold = router.route(session, "skyline", predicate=predicate)
    assert cold.stats.cache_outcome == "miss"
    assert cold.tids == expected
    warm = router.route(session, "skyline", predicate=predicate)
    assert warm.stats.cache_outcome == "hit"
    assert warm.tids == cold.tids
    assert warm.stats.route == cold.stats.route

    fn = LinearFunction((0.5, 1.5))
    cold_topk = router.route(
        session, "topk", predicate=predicate, fn=fn, k=4
    )
    warm_topk = router.route(
        session, "topk", predicate=predicate, fn=fn, k=4
    )
    assert warm_topk.stats.cache_outcome == "hit"
    assert warm_topk.tids == cold_topk.tids
    assert warm_topk.scores == cold_topk.scores


@pytest.mark.routing
@DIFFERENTIAL_SETTINGS
@given(rows=rows_strategy)
def test_differential_router_empty_predicate(rows):
    """The apex query (``BP = φ``) routes, caches and matches naive."""
    from repro.route import QueryRouter

    relation = make_relation(rows)
    system = build_system(relation, fanout=4)
    predicate = BooleanPredicate()
    session = _routed_session(system)
    expected = _expected_skyline(relation, predicate)

    router = QueryRouter.for_system(system)
    cold = router.route(session, "skyline", predicate=predicate)
    assert cold.tids == expected
    warm = router.route(session, "skyline", predicate=predicate)
    assert warm.stats.cache_outcome == "hit"
    assert warm.tids == expected


@pytest.mark.routing
@DIFFERENTIAL_SETTINGS
@given(rows=rows_strategy)
def test_differential_router_all_boolean_dims_constrained(rows):
    """A predicate constraining every boolean dimension (the finest cell)
    agrees with naive through the adaptive router."""
    from repro.route import QueryRouter

    relation = make_relation(rows)
    system = build_system(relation, fanout=4)
    # Anchor at row 0 so the fully-constrained predicate is satisfiable.
    predicate = BooleanPredicate(
        {
            "A": relation.bool_value(0, "A"),
            "B": relation.bool_value(0, "B"),
        }
    )
    session = _routed_session(system)
    expected = _expected_skyline(relation, predicate)
    router = QueryRouter.for_system(system)
    result = router.route(session, "skyline", predicate=predicate)
    assert result.tids == expected
