"""Acceptance: durability machinery survives a crash at every disk access.

Extends the PR-2 crash sweep (tests/integration/test_crash_recovery.py)
across the three new durability paths:

* **checkpoint create** — a crash at any checkpoint-page allocation leaves
  the catalog unchanged (the manifest is the commit point), the orphans
  reclaimable, and the next checkpoint + restore byte-identical;
* **WAL rotation** — with one-byte segments every commit seals, so a crash
  at any WAL allocation during maintenance lands around segment seals too;
  recovery must hold the same byte-identity contract as the PR-2 sweep;
* **restore** — a crash at any accounted read during ``restore_system``
  is harmless: restore is a read-only function of the disk image, so the
  retry must succeed and verify byte-identical.

Plus the torn-tail regression (satellite): ``recover()`` truncates tail
damage by default and is fail-stop only on interior corruption.
"""

import random

import pytest

from repro.backup import answer_fingerprint
from repro.core.checkpoint import CheckpointManager, restore_system
from repro.core.wal import WalCorruptionError
from repro.data.synthetic import SyntheticConfig, generate_relation
from repro.storage.disk import SimulatedDisk
from repro.storage.faults import (
    FaultPlan,
    FaultRule,
    FaultyDisk,
    SimulatedCrash,
)
from repro.system import build_system

pytestmark = [pytest.mark.durability, pytest.mark.crash]

CONFIG = dict(
    n_tuples=113, n_boolean=2, cardinality=3, n_preference=2, seed=13
)


def make_system(wal_segment_bytes=512):
    disk = FaultyDisk(SimulatedDisk())
    relation = generate_relation(SyntheticConfig(**CONFIG), disk=disk)
    return disk, build_system(
        relation, fanout=5, wal_segment_bytes=wal_segment_bytes
    )


def mutate(system, rng):
    system.insert(
        system.relation.bool_row(0), (rng.random(), rng.random())
    )
    system.delete(rng.randrange(20))
    system.update(30 + rng.randrange(20), (rng.random(), rng.random()))


def count_accesses(run, disk, sites):
    """Access counts per (op, tag) site for one callable (never fires)."""
    rules = [
        FaultRule(kind="crash", op=op, tag=tag, probability=0.0, count=None)
        for op, tag in sites
    ]
    disk.plan = FaultPlan(rules)
    run()
    disk.plan = FaultPlan()
    return {site: rule.seen for site, rule in zip(sites, rules)}


def test_crash_sweep_checkpoint_create():
    """Crash at every page allocation during create: the manifest commit
    point holds, orphans reclaim, and restore stays byte-identical."""
    rng = random.Random(41)
    disk, probe = make_system()
    mutate(probe, rng)
    counts = count_accesses(
        lambda: CheckpointManager(probe).create(),
        disk,
        [("allocate", "ckpt")],
    )
    n_points = counts[("allocate", "ckpt")]
    assert n_points >= 2  # at least one row chunk + the manifest

    for k in range(n_points):
        rng = random.Random(41)
        disk, system = make_system()
        mutate(system, rng)
        manager = CheckpointManager(system)
        baseline = manager.create()
        mutate(system, rng)
        disk.plan = FaultPlan(
            [
                FaultRule(
                    kind="crash", op="allocate", tag="ckpt", after=k, count=1
                )
            ]
        )
        with pytest.raises(SimulatedCrash):
            manager.create()
        disk.plan = FaultPlan()
        # The crashed checkpoint never entered the catalog.
        assert [info.checkpoint_id for info in manager.catalog()] == [
            baseline.checkpoint_id
        ]
        manager.gc_orphans()
        retried = manager.create()
        assert retried.checkpoint_id > baseline.checkpoint_id
        result = restore_system(system.disk)
        assert result.checkpoint.checkpoint_id == retried.checkpoint_id
        assert answer_fingerprint(result.system) == answer_fingerprint(
            system
        ), k


def test_crash_sweep_wal_rotation():
    """One-byte segments seal on every commit; the PR-2 recovery contract
    must hold with the seal allocations in the crash surface."""
    def op(system):
        system.insert(system.relation.bool_row(0), (0.42, 0.17))

    _, crash_free = make_system(wal_segment_bytes=1)
    op(crash_free)
    assert crash_free.verify_consistency().ok
    expected = answer_fingerprint(crash_free)
    assert crash_free.wal.segments()[0].sealed  # rotation actually fires

    disk, probe = make_system(wal_segment_bytes=1)
    counts = count_accesses(lambda: op(probe), disk, [("allocate", "wal")])
    n_points = counts[("allocate", "wal")]
    assert n_points >= 4  # intent, changes, commit, seal at least

    for k in range(n_points):
        disk, system = make_system(wal_segment_bytes=1)
        disk.plan = FaultPlan(
            [
                FaultRule(
                    kind="crash", op="allocate", tag="wal", after=k, count=1
                )
            ]
        )
        with pytest.raises(SimulatedCrash):
            op(system)
        disk.plan = FaultPlan()
        outcome = system.recover()
        assert outcome in ("clean", "replayed", "reindexed")
        assert system.verify_consistency().ok, (k, outcome)
        if outcome == "clean":
            op(system)
            assert system.verify_consistency().ok
        assert answer_fingerprint(system) == expected, (k, outcome)


def test_crash_sweep_restore():
    """Restore is read-only over the image: a crash at any accounted read
    just means retrying, and the retry verifies byte-identical."""
    rng = random.Random(43)
    disk, system = make_system()
    manager = CheckpointManager(system)
    manager.create()
    mutate(system, rng)
    manager.create()
    mutate(system, rng)  # a committed tail past the newest watermark
    expected = answer_fingerprint(system)

    sites = [("read", "ckpt"), ("read", "wal")]
    counts = count_accesses(
        lambda: restore_system(system.disk), disk, sites
    )
    assert counts[("read", "ckpt")] >= 2
    assert counts[("read", "wal")] >= 1

    swept = 0
    for (op, tag), seen in counts.items():
        for k in range(seen):
            disk.plan = FaultPlan(
                [FaultRule(kind="crash", op=op, tag=tag, after=k, count=1)]
            )
            with pytest.raises(SimulatedCrash):
                restore_system(system.disk)
            disk.plan = FaultPlan()
            result = restore_system(system.disk)
            assert result.checkpoint.checkpoint_id == 1
            assert answer_fingerprint(result.system) == expected, (op, tag, k)
            swept += 1
    assert swept == sum(counts.values())


def test_recovery_replays_only_the_post_watermark_tail():
    """The checkpointed fast path: sealed segments below the watermark are
    skipped for the price of their seal reads."""
    rng = random.Random(47)
    _, system = make_system(wal_segment_bytes=256)
    manager = CheckpointManager(system)
    manager.create()
    for _ in range(4):
        mutate(system, rng)
    manager.create()
    mutate(system, rng)
    result = restore_system(system.disk)
    assert result.checkpoint.checkpoint_id == 1
    assert result.ops_replayed == 3  # only the post-checkpoint mutate
    assert result.wal_metrics["segments_skipped"] >= 1
    assert answer_fingerprint(result.system) == answer_fingerprint(system)


def test_torn_wal_tail_is_truncated_by_default():
    """Satellite regression: tail damage is truncated and recovery
    proceeds; no operator flag needed.

    The torn append is the *commit* record — the last thing the operation
    wrote, so nothing later depends on it.  Truncation turns the state
    into an ordinary mid-operation crash: the intent survives, recovery
    rolls the operation forward, answers match the crash-free run.
    """
    def lsn_of(page):
        return (
            page.payload.get("lsn", -1)
            if isinstance(page.payload, dict)
            else -1
        )

    _, system = make_system()
    system.insert(system.relation.bool_row(0), (0.42, 0.17))
    torn = max(system.disk.pages("wal:rec"), key=lsn_of)
    assert torn.payload["kind"] == "commit"
    torn.payload.clear()
    torn.payload["garbage"] = b"\xff\xff"

    outcome = system.recover()
    assert outcome in ("replayed", "reindexed")
    assert system.maintenance_stats.wal_tail_truncated >= 1
    assert system.verify_consistency().ok

    _, crash_free = make_system()
    crash_free.insert(crash_free.relation.bool_row(0), (0.42, 0.17))
    assert answer_fingerprint(system) == answer_fingerprint(crash_free)
    # Recovery re-committed the operation: new maintenance is accepted.
    system.delete(3)
    assert system.verify_consistency().ok


def test_interior_wal_corruption_is_fail_stop():
    """Damage *behind* intact records is data loss, not a torn tail —
    recovery must refuse rather than silently truncate."""
    disk, system = make_system()
    system.insert(system.relation.bool_row(0), (0.42, 0.17))
    disk.plan = FaultPlan(
        [FaultRule(kind="crash", op="write", tag="rtree", count=1)]
    )
    with pytest.raises(SimulatedCrash):
        system.update(11, (0.9, 0.05))
    disk.plan = FaultPlan()

    def lsn_of(page):
        return (
            page.payload.get("lsn", -1)
            if isinstance(page.payload, dict)
            else -1
        )

    interior = min(
        (p for p in system.disk.pages("wal:rec") if lsn_of(p) >= 0),
        key=lsn_of,
    )
    interior.payload["kind"] = "mangled"
    with pytest.raises(WalCorruptionError):
        system.recover()
