"""The build_system facade and whole-system lifecycle."""

import pytest

from repro.data.synthetic import SyntheticConfig, generate_relation
from repro.system import build_system


@pytest.fixture
def relation():
    return generate_relation(
        SyntheticConfig(
            n_tuples=400, n_boolean=2, cardinality=4, n_preference=2, seed=19
        )
    )


def test_build_bulk_default(relation):
    system = build_system(relation, fanout=8)
    assert len(system.rtree) == 400
    assert system.pcube.n_cells() == 8
    assert set(system.indexes) == {"A1", "A2"}
    assert system.timings.rtree_seconds > 0
    assert system.timings.pcube_seconds > 0
    assert system.timings.btree_seconds > 0


def test_build_insert_method(relation):
    system = build_system(relation, fanout=8, rtree_method="insert")
    assert len(system.rtree) == 400
    result = system.engine.skyline()
    assert result.tids


def test_build_unknown_method_rejected(relation):
    with pytest.raises(ValueError):
        build_system(relation, rtree_method="magic")


def test_build_without_indexes(relation):
    system = build_system(relation, fanout=8, with_indexes=False)
    assert system.indexes == {}
    assert system.timings.btree_seconds == 0.0


def test_default_fanout_derived_from_page_size(relation):
    system = build_system(relation)
    # 2 preference dims at 4 KB pages -> the paper's M = 204.
    assert system.rtree.max_entries == 204


def test_space_accounting_views(relation):
    system = build_system(relation, fanout=8)
    assert system.rtree_size_mb() > 0
    assert system.pcube_size_mb() > 0
    assert system.btree_size_mb() > 0
    assert system.disk is relation.disk


def test_everything_shares_one_disk(relation):
    system = build_system(relation, fanout=8)
    tags = {page.tag.split(":")[0] for page in system.disk.pages()}
    assert {"heap", "rtree", "pcube", "btree"} <= tags
