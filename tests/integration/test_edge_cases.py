"""Degenerate inputs end to end: tiny relations, ties, saturated predicates."""

import pytest

from repro.baselines.naive import naive_skyline, naive_topk
from repro.cube.relation import Relation
from repro.cube.schema import Schema
from repro.query.predicates import BooleanPredicate
from repro.query.ranking import LinearFunction
from repro.system import build_system


def tiny_system(rows, n_pref=2, **kwargs):
    schema = Schema(("A",), tuple(f"N{i}" for i in range(n_pref)))
    bool_rows = [(r[0],) for r in rows]
    pref_rows = [tuple(r[1:]) for r in rows]
    relation = Relation(schema, bool_rows, pref_rows)
    kwargs.setdefault("fanout", 4)
    kwargs.setdefault("with_indexes", True)
    return relation, build_system(relation, **kwargs)


def test_single_tuple_relation():
    relation, system = tiny_system([("a", 0.5, 0.5)])
    result = system.engine.skyline(BooleanPredicate({"A": "a"}))
    assert result.tids == [0]
    miss = system.engine.skyline(BooleanPredicate({"A": "zzz"}))
    assert miss.tids == []


def test_all_points_identical():
    relation, system = tiny_system([("a", 0.3, 0.3)] * 9 + [("b", 0.3, 0.3)])
    result = system.engine.skyline(BooleanPredicate({"A": "a"}))
    # Equal points do not dominate each other: all 9 are skyline points.
    assert sorted(result.tids) == list(range(9))


def test_predicate_selecting_everything():
    rows = [("a", i / 10, 1 - i / 10) for i in range(10)]
    relation, system = tiny_system(rows)
    result = system.engine.skyline(BooleanPredicate({"A": "a"}))
    assert sorted(result.tids) == list(range(10))  # an anti-chain


def test_topk_with_ties_returns_exactly_k():
    rows = [("a", 0.5, 0.5)] * 6
    relation, system = tiny_system(rows)
    result = system.engine.topk(
        LinearFunction([1.0, 1.0]), k=3, predicate=BooleanPredicate({"A": "a"})
    )
    assert len(result.tids) == 3
    assert all(s == pytest.approx(1.0) for s in result.scores)


def test_topk_k_one():
    rows = [("a", v, v) for v in (0.9, 0.1, 0.5)]
    relation, system = tiny_system(rows)
    result = system.engine.topk(
        LinearFunction([1.0, 1.0]), k=1, predicate=BooleanPredicate({"A": "a"})
    )
    assert result.tids == [1]


def test_string_boolean_values():
    rows = [("alpha", 0.1, 0.9), ("beta", 0.9, 0.1), ("alpha", 0.5, 0.5)]
    relation, system = tiny_system(rows)
    result = system.engine.skyline(BooleanPredicate({"A": "alpha"}))
    assert sorted(result.tids) == [0, 2]


def test_one_dimensional_preference_space():
    rows = [("a", 0.7), ("a", 0.2), ("b", 0.1), ("a", 0.2)]
    relation, system = tiny_system(rows, n_pref=1)
    result = system.engine.skyline(BooleanPredicate({"A": "a"}))
    # 1-D skyline = all minima (ties included).
    assert sorted(result.tids) == [1, 3]
    topk = system.engine.topk(
        LinearFunction([1.0]), k=2, predicate=BooleanPredicate({"A": "a"})
    )
    assert sorted(topk.tids) == [1, 3]


def test_high_dimensional_preference_space():
    import random

    rng = random.Random(3)
    rows = [
        ("a",) + tuple(rng.random() for _ in range(6)) for _ in range(120)
    ]
    relation, system = tiny_system(rows, n_pref=6, fanout=8)
    predicate = BooleanPredicate({"A": "a"})
    result = system.engine.skyline(predicate)
    expected = set(
        naive_skyline(
            [(tid, relation.pref_point(tid)) for tid in relation.tids()]
        )
    )
    assert set(result.tids) == expected


def test_boundary_coordinates():
    rows = [("a", 0.0, 1.0), ("a", 1.0, 0.0), ("a", 0.0, 0.0), ("a", 1.0, 1.0)]
    relation, system = tiny_system(rows)
    result = system.engine.skyline(BooleanPredicate({"A": "a"}))
    assert result.tids == [2]  # the origin dominates everything else


def test_negative_coordinates():
    rows = [("a", -1.0, 2.0), ("a", 0.0, 0.0), ("a", -2.0, 3.0)]
    relation, system = tiny_system(rows)
    result = system.engine.skyline(BooleanPredicate({"A": "a"}))
    expected = set(
        naive_skyline(
            [(tid, relation.pref_point(tid)) for tid in relation.tids()]
        )
    )
    assert set(result.tids) == expected


def test_eager_assembly_engine_mode():
    import random

    rng = random.Random(5)
    schema = Schema(("A", "B"), ("X", "Y"))
    rows = [
        (
            (rng.randrange(3), rng.randrange(3)),
            (rng.random(), rng.random()),
        )
        for _ in range(200)
    ]
    relation = Relation(schema, [r[0] for r in rows], [r[1] for r in rows])
    system = build_system(relation, fanout=4, eager_assembly=True)
    predicate = BooleanPredicate({"A": 1, "B": 2})
    result = system.engine.skyline(predicate)
    expected = set(
        naive_skyline(
            [
                (tid, relation.pref_point(tid))
                for tid in relation.tids()
                if predicate.matches(relation, tid)
            ]
        )
    )
    assert set(result.tids) == expected


def test_topk_scores_match_naive_under_distance_function():
    import random

    from repro.query.ranking import WeightedSquaredDistance

    rng = random.Random(7)
    rows = [
        ("x" if rng.random() < 0.5 else "y", rng.random(), rng.random())
        for _ in range(300)
    ]
    relation, system = tiny_system(rows, fanout=6)
    fn = WeightedSquaredDistance(target=(0.5, 0.5), weights=(2.0, 1.0))
    predicate = BooleanPredicate({"A": "x"})
    result = system.engine.topk(fn, 7, predicate)
    expected = naive_topk(
        [
            (tid, relation.pref_point(tid))
            for tid in relation.tids()
            if predicate.matches(relation, tid)
        ],
        fn,
        7,
    )
    assert [round(s, 9) for s in result.scores] == [
        round(s, 9) for _, s in expected
    ]
