"""Cross-method equivalence: every method, every configuration, one truth.

The strongest correctness statement the reproduction can make: on random
relations, the Signature method, all three baselines and the naive reference
return the same answers for the same queries.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.boolean_first import boolean_first_skyline, boolean_first_topk
from repro.baselines.domination_first import domination_first_skyline, ranking_topk
from repro.baselines.index_merge import index_merge_topk
from repro.baselines.naive import naive_skyline, naive_topk
from repro.cube.relation import Relation
from repro.cube.schema import Schema
from repro.data.synthetic import SyntheticConfig, generate_relation
from repro.data.workload import sample_linear_function, sample_predicate
from repro.query.predicates import BooleanPredicate
from repro.query.skyline import skyline_signature
from repro.query.topk import topk_signature
from repro.system import build_system


def qualifying_points(relation, predicate):
    return [
        (tid, relation.pref_point(tid))
        for tid in relation.tids()
        if predicate.matches(relation, tid)
    ]


@pytest.mark.parametrize(
    "distribution,n_preference,fanout",
    [
        ("uniform", 2, 6),
        ("uniform", 3, 8),
        ("correlated", 2, 6),
        ("anticorrelated", 2, 10),
        ("clustered", 3, 6),
        ("uniform", 4, 16),
    ],
)
def test_all_methods_agree(distribution, n_preference, fanout):
    config = SyntheticConfig(
        n_tuples=800,
        n_boolean=3,
        cardinality=6,
        n_preference=n_preference,
        distribution=distribution,
        seed=hash((distribution, n_preference)) % 2**31,
    )
    relation = generate_relation(config)
    system = build_system(relation, fanout=fanout)
    rng = random.Random(99)

    for n_conjuncts in (1, 2):
        predicate = sample_predicate(relation, n_conjuncts, rng)
        truth = qualifying_points(relation, predicate)
        expected_sky = sorted(naive_skyline(truth))

        sig_tids, _, _ = skyline_signature(
            relation, system.rtree, system.pcube, predicate
        )
        assert sorted(sig_tids) == expected_sky

        bool_tids, _ = boolean_first_skyline(
            relation, system.indexes, predicate
        )
        assert sorted(bool_tids) == expected_sky

        dom_tids, _, _ = domination_first_skyline(
            relation, system.rtree, predicate
        )
        assert sorted(dom_tids) == expected_sky

        fn = sample_linear_function(n_preference, rng)
        expected_topk = [
            round(s, 9) for _, s in naive_topk(truth, fn, 10)
        ]
        for method_scores in (
            [s for _, s in topk_signature(
                relation, system.rtree, system.pcube, fn, 10, predicate
            )[0]],
            [s for _, s in boolean_first_topk(
                relation, system.indexes, fn, 10, predicate
            )[0]],
            [s for _, s in ranking_topk(
                relation, system.rtree, fn, 10, predicate
            )[0]],
            [s for _, s in index_merge_topk(
                relation, system.rtree, system.indexes, fn, 10, predicate
            )[0]],
        ):
            assert [round(s, 9) for s in method_scores] == expected_topk


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    rows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=1,
        max_size=60,
    ),
    pred_a=st.integers(min_value=0, max_value=2),
    use_two=st.booleans(),
    pred_b=st.integers(min_value=0, max_value=2),
)
def test_signature_skyline_property(rows, pred_a, use_two, pred_b):
    """Tiny adversarial relations (heavy duplicate points, tiny fanout,
    deep trees) — signature skyline must equal the naive skyline."""
    schema = Schema(("A", "B"), ("X", "Y"))
    bool_rows = [(a, b) for a, b, _, _ in rows]
    pref_rows = [(x / 7.0, y / 7.0) for _, _, x, y in rows]
    relation = Relation(schema, bool_rows, pref_rows)
    system = build_system(relation, fanout=4, with_indexes=False)
    conjuncts = {"A": pred_a}
    if use_two:
        conjuncts["B"] = pred_b
    predicate = BooleanPredicate(conjuncts)
    tids, _, _ = skyline_signature(
        relation, system.rtree, system.pcube, predicate
    )
    assert sorted(tids) == sorted(
        naive_skyline(qualifying_points(relation, predicate))
    )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    rows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=9),
        ),
        min_size=1,
        max_size=50,
    ),
    weights=st.tuples(
        st.floats(min_value=0.1, max_value=2.0),
        st.floats(min_value=0.1, max_value=2.0),
    ),
    k=st.integers(min_value=1, max_value=12),
    value=st.integers(min_value=0, max_value=2),
)
def test_signature_topk_property(rows, weights, k, value):
    from repro.query.ranking import LinearFunction

    schema = Schema(("A",), ("X", "Y"))
    bool_rows = [(a,) for a, _, _ in rows]
    pref_rows = [(x / 9.0, y / 9.0) for _, x, y in rows]
    relation = Relation(schema, bool_rows, pref_rows)
    system = build_system(relation, fanout=4, with_indexes=False)
    predicate = BooleanPredicate({"A": value})
    fn = LinearFunction(weights)
    ranked, _, _ = topk_signature(
        relation, system.rtree, system.pcube, fn, k, predicate
    )
    expected = naive_topk(qualifying_points(relation, predicate), fn, k)
    assert [round(s, 9) for _, s in ranked] == [
        round(s, 9) for _, s in expected
    ]
