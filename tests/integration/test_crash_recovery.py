"""Acceptance: every declared crash point in every maintenance op recovers.

The crash-safety contract (ISSUE: crash-safe incremental maintenance): a
:class:`SimulatedCrash` injected at *any* disk access a maintenance
operation performs — WAL record appends, heap paging, R-tree node
allocations and writes, signature-page allocations, store-index writes —
leaves the system recoverable: after ``recover()``, ``verify_consistency()``
reports zero problems and top-k / skyline answers under sampled predicates
are byte-identical to a crash-free run of the same operation.

The sweep enumerates the crash points empirically: a ``probability=0.0``
crash rule never fires but still counts matching accesses, so each
(op, tag) site's access count bounds the ``after=k`` sweep exactly.
"""

import random

import pytest

from repro.data.synthetic import SyntheticConfig, generate_relation
from repro.data.workload import sample_linear_function, sample_predicate
from repro.storage.disk import SimulatedDisk
from repro.storage.faults import (
    FaultPlan,
    FaultRule,
    FaultyDisk,
    SimulatedCrash,
)
from repro.system import build_system

pytestmark = pytest.mark.crash

#: 113 tuples fill exactly one heap page (rows_per_page for 2+2 columns at
#: 4 KB), so the first maintenance insert must allocate a heap page — the
#: ("allocate", "heap") crash point is guaranteed to occur.
CONFIG = dict(
    n_tuples=113, n_boolean=2, cardinality=3, n_preference=2, seed=13
)

#: Every (op, tag-prefix) pair at which maintenance touches the disk.
CRASH_SITES = [
    ("allocate", "wal"),
    ("allocate", "heap"),
    ("allocate", "rtree"),
    ("write", "rtree"),
    ("allocate", "pcube:sig"),
    ("allocate", "pcube:index"),
    ("write", "pcube:index"),
]


def make_system():
    disk = FaultyDisk(SimulatedDisk())
    relation = generate_relation(SyntheticConfig(**CONFIG), disk=disk)
    return disk, build_system(relation, fanout=5)


def run_insert(system):
    system.insert(system.relation.bool_row(0), (0.42, 0.17))


def run_insert_batch(system):
    rows = [
        (system.relation.bool_row(tid), (0.1 * tid + 0.05, 0.93 - 0.1 * tid))
        for tid in range(5)
    ]
    system.insert_batch(rows)


def run_delete(system):
    system.delete(7)


def run_update(system):
    system.update(11, (0.9, 0.05))


OPS = {
    "insert": run_insert,
    "insert_batch": run_insert_batch,
    "delete": run_delete,
    "update": run_update,
}


def fingerprint(system):
    """Query answers under sampled predicates — the byte-identity probe."""
    rng = random.Random(99)
    fn = sample_linear_function(system.relation.schema.n_preference, rng)
    out = []
    for n_conjuncts in (1, 2):
        predicate = sample_predicate(system.relation, n_conjuncts, rng)
        sky = system.engine.skyline(predicate)
        topk = system.engine.topk(fn, 5, predicate)
        out.append((sky.tids, topk.tids, topk.scores))
    return out


@pytest.fixture(scope="module")
def crash_free():
    """Per-op fingerprints of a run no fault ever touched."""
    results = {}
    for kind, op in OPS.items():
        _, system = make_system()
        op(system)
        assert system.verify_consistency().ok
        results[kind] = fingerprint(system)
    return results


def count_crash_points(kind):
    """Access counts per crash site for one operation (rules never fire)."""
    disk, system = make_system()
    rules = [
        FaultRule(kind="crash", op=op, tag=tag, probability=0.0, count=None)
        for op, tag in CRASH_SITES
    ]
    disk.plan = FaultPlan(rules)
    OPS[kind](system)
    return {site: rule.seen for site, rule in zip(CRASH_SITES, rules)}


@pytest.mark.parametrize("kind", sorted(OPS))
def test_crash_sweep_recovers_every_point(kind, crash_free):
    counts = count_crash_points(kind)
    # The op must actually exercise the journal, the tree and the store.
    assert counts[("allocate", "wal")] >= 2
    assert counts[("write", "rtree")] >= 1
    assert counts[("allocate", "pcube:sig")] >= 1
    if kind in ("insert", "insert_batch"):
        assert counts[("allocate", "heap")] >= 1

    swept = 0
    for (op, tag), seen in counts.items():
        for k in range(seen):
            disk, system = make_system()
            disk.plan = FaultPlan(
                [FaultRule(kind="crash", op=op, tag=tag, after=k, count=1)]
            )
            with pytest.raises(SimulatedCrash):
                OPS[kind](system)
            disk.plan = FaultPlan()

            outcome = system.recover()
            assert outcome in ("clean", "replayed", "reindexed")
            report = system.verify_consistency()
            assert report.ok, (op, tag, k, outcome, report.problems)
            if outcome == "clean":
                # The intent never became durable: the operation simply
                # never happened.  Re-submitting completes it.
                OPS[kind](system)
                assert system.verify_consistency().ok
            assert fingerprint(system) == crash_free[kind], (op, tag, k, outcome)
            swept += 1
    assert swept == sum(counts.values())


def test_crash_during_recovery_converges(crash_free):
    """Recovery is idempotent: a crash *inside* recovery is also safe."""
    disk, system = make_system()
    disk.plan = FaultPlan(
        [FaultRule(kind="crash", op="write", tag="rtree", count=1)]
    )
    with pytest.raises(SimulatedCrash):
        run_update(system)

    # The reindex path re-allocates tree and signature pages; kill it there.
    disk.plan = FaultPlan(
        [
            FaultRule(
                kind="crash", op="allocate", tag="pcube:sig", after=3, count=1
            )
        ]
    )
    with pytest.raises(SimulatedCrash):
        system.recover()
    assert not system.wal.is_empty()

    disk.plan = FaultPlan()
    assert system.recover() == "reindexed"
    assert system.wal.is_empty()
    report = system.verify_consistency()
    assert report.ok, report.problems
    assert fingerprint(system) == crash_free["update"]
    assert system.maintenance_stats.recoveries == 2
    # Only the second recovery ran to completion.
    assert system.maintenance_stats.reindexes == 1


def test_recover_on_clean_system_is_a_no_op(crash_free):
    _, system = make_system()
    run_insert(system)
    before = fingerprint(system)
    assert system.recover() == "clean"
    assert system.maintenance_stats.recoveries == 0
    assert fingerprint(system) == before


def test_new_maintenance_refused_until_recovery(crash_free):
    disk, system = make_system()
    disk.plan = FaultPlan(
        [FaultRule(kind="crash", op="write", tag="rtree", count=1)]
    )
    with pytest.raises(SimulatedCrash):
        run_delete(system)
    disk.plan = FaultPlan()
    with pytest.raises(RuntimeError, match="recover"):
        run_insert(system)
    assert system.recover() == "reindexed"
    run_insert(system)
    assert system.verify_consistency().ok


def test_recovery_counters_reported(crash_free):
    disk, system = make_system()
    disk.plan = FaultPlan(
        [
            FaultRule(
                kind="crash", op="allocate", tag="pcube:sig", count=1
            )
        ]
    )
    with pytest.raises(SimulatedCrash):
        run_delete(system)
    disk.plan = FaultPlan()
    assert system.recover() == "replayed"
    snapshot = system.maintenance_stats.snapshot()
    assert snapshot["recoveries"] == 1
    assert snapshot["replayed_cells"] >= 1
    assert snapshot["reindexes"] == 0
    assert system.verify_consistency().ok
