"""Acceptance: the scrubber finds 100% of seeded corruption and heals it
while a concurrent reader keeps querying; the supervisor reports hangs
and stalls.

Corruption is injected by tampering page payloads directly (below the
fault plan — the scrubber reads at peek level, so injected *read* faults
would never reach it), which is exactly what latent media damage looks
like to a checksum sweep.
"""

import random
import threading
import time

import pytest

from repro.data.synthetic import SyntheticConfig, generate_relation
from repro.serve.executor import QueryExecutor
from repro.serve.scrub import Scrubber, Supervisor
from repro.storage.disk import SimulatedDisk
from repro.system import build_system

pytestmark = [pytest.mark.durability, pytest.mark.concurrent]

CONFIG = dict(
    n_tuples=113, n_boolean=2, cardinality=3, n_preference=2, seed=13
)


def make_system():
    relation = generate_relation(
        SyntheticConfig(**CONFIG), disk=SimulatedDisk()
    )
    return build_system(relation, fanout=5)


def corrupt_signature_pages(system, n, seed=7):
    """Garble ``n`` distinct signature pages in place; returns the set of
    owning cell ids."""
    rng = random.Random(seed)
    entries = system.pcube.store.directory_entries()
    picks = rng.sample(range(len(entries)), min(n, len(entries)))
    owners = set()
    for index in picks:
        (cell_id, _sid), page_id = entries[index]
        page = system.disk.peek(page_id)
        key = next(iter(page.payload.blobs))
        page.payload.blobs[key] = b"\xff\x00\xff"
        owners.add(cell_id)
    return owners


def test_one_pass_detects_every_seeded_fault():
    """100% detection: every tampered page surfaces as a checksum finding
    in a single pass, and healing leaves a clean audit."""
    system = make_system()
    system.enable_epochs()
    baseline = system.engine.skyline()
    owners = corrupt_signature_pages(system, n=5)

    scrubber = Scrubber(system)
    findings = scrubber.run_pass()
    checksum_findings = [f for f in findings if f.kind == "checksum"]
    assert len(checksum_findings) == 5
    assert scrubber.stats.checksum_faults == 5
    assert all(f.repaired for f in checksum_findings)
    assert scrubber.stats.cells_repaired == len(owners)

    assert system.verify_consistency().ok
    assert system.engine.skyline().tids == baseline.tids
    assert system.pcube.store.quarantined_cells() == []
    # A second pass over the healed disk is quiet.
    assert scrubber.run_pass() == []


def test_detection_without_repair_only_reports():
    system = make_system()
    system.enable_epochs()
    corrupt_signature_pages(system, n=3)
    scrubber = Scrubber(system, repair=False)
    findings = scrubber.run_pass()
    assert sum(1 for f in findings if f.kind == "checksum") == 3
    assert all(not f.repaired for f in findings)
    assert scrubber.stats.cells_repaired == 0
    # The damage is still there for the next pass.
    assert sum(
        1 for f in scrubber.run_pass() if f.kind == "checksum"
    ) == 3


def test_heal_under_a_concurrent_reader():
    """The rebuild publishes a fresh epoch: a reader querying throughout
    never sees a wrong answer, before, during or after the heal."""
    system = make_system()
    system.enable_epochs()
    expected = system.engine.skyline().tids
    corrupt_signature_pages(system, n=4)

    stop = threading.Event()
    mismatches: list = []

    def reader():
        with QueryExecutor(system, threads=2) as executor:
            while not stop.is_set():
                tids = executor.skyline().result(timeout=30.0).tids
                if tids != expected:
                    mismatches.append(tids)

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        time.sleep(0.02)  # let the reader overlap the damaged window
        findings = Scrubber(system).run_pass()
        assert sum(1 for f in findings if f.kind == "checksum") == 4
        time.sleep(0.02)  # and the healed one
    finally:
        stop.set()
        thread.join()
    assert mismatches == []
    assert system.verify_consistency().ok
    assert system.engine.skyline().tids == expected


def test_background_scrubbing_via_the_executor():
    system = make_system()
    with QueryExecutor(system, threads=2) as executor:
        supervisor = executor.enable_scrubbing(
            pages_per_tick=64, cells_per_tick=8, interval=0.001
        )
        assert executor.enable_scrubbing() is supervisor  # idempotent
        deadline = time.monotonic() + 10.0
        while (
            executor.scrubber.stats.passes == 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        assert executor.scrubber.stats.passes >= 1
        health = executor.health()
        assert health["scrubber"]["passes"] >= 1
        assert health["supervisor"]["ok"] is True
    assert executor.scrubber.running is False  # shutdown stops it


def test_supervisor_reports_hung_queries_and_stalled_maintenance():
    system = make_system()
    supervisor = Supervisor(system, hung_after=0.0, stalled_after=0.0)
    report = supervisor.report()
    assert report["ok"] is True
    assert report["maintenance"]["wal_pending"] is False

    # A WAL operation left pending looks stalled once past the horizon.
    system.wal.begin("insert", base=len(system.relation), rows=[])
    time.sleep(0.01)
    report = supervisor.report()
    assert report["maintenance"]["wal_pending"] is True
    assert report["maintenance"]["stalled"] is True
    assert report["ok"] is False


def test_supervisor_sees_inflight_queries():
    system = make_system()
    system.disk.read_latency = 0.002  # slow enough to catch in flight
    with QueryExecutor(system, threads=1, pool=None) as executor:
        supervisor = Supervisor(
            system, executor=executor, hung_after=0.0, stalled_after=5.0
        )
        ticket = executor.skyline()
        hung_seen = []
        deadline = time.monotonic() + 10.0
        while not hung_seen and time.monotonic() < deadline:
            hung_seen = supervisor.report()["hung_queries"]
        ticket.result(timeout=30.0)
        assert hung_seen and hung_seen[0]["kind"] == "skyline"
    assert supervisor.report()["hung_queries"] == []
