"""Failure injection: the error paths must fail loudly, never corrupt."""

import pytest

from repro.bitmap.bitarray import BitArray
from repro.bitmap.compression import compress
from repro.core.counted import CountedSignature
from repro.core.partial import decompose
from repro.core.signature import Signature
from repro.core.store import SignatureStore
from repro.cube.cuboid import Cell
from repro.data.synthetic import generate_relation
from repro.data.workload import sample_predicate
from repro.rtree.rtree import RTree
from repro.storage.disk import PageFault, SimulatedDisk
from repro.storage.faults import FaultPlan, FaultRule, FaultyDisk
from repro.system import build_system


def test_remove_path_failure_leaves_counts_intact():
    counted = CountedSignature(4)
    counted.add_path((1, 2))
    counted.add_path((1, 3))
    # Removing an uncounted path fails part-way (the root count for child 2
    # exists, the child-level count does not).  The failure must not have
    # removed the surviving tuple's evidence.
    with pytest.raises(KeyError):
        counted.remove_path((2, 1))
    assert counted.to_signature() == Signature.from_paths([(1, 2), (1, 3)], 4)


def test_store_load_after_replace_does_not_fault():
    disk = SimulatedDisk(page_size=64)
    store = SignatureStore(disk, fanout=4, codec="raw")
    cell = Cell(("A",), ("x",))
    wide = Signature.from_paths(
        [(a, b) for a in (1, 2, 3) for b in (1, 2)], 4
    )
    store.put_signature(cell, wide)
    old_refs = list(store._directory[cell.cell_id].values())
    store.put_signature(cell, Signature.from_paths([(1, 1)], 4))
    # The replaced pages are gone; reading them directly faults ...
    for page_id in old_refs:
        with pytest.raises(PageFault):
            disk.read(page_id, "SSIG")
    # ... but the store's own paths never touch them.
    assert store.load_full_signature(cell) == Signature.from_paths([(1, 1)], 4)
    reader = store.reader(cell)
    assert reader.check_path((1, 1))


def test_rtree_insert_failure_does_not_register_tid():
    tree = RTree(dims=2, max_entries=4, min_entries=2)
    tree.insert(0, (0.1, 0.1))
    with pytest.raises(ValueError):
        tree.insert(1, (0.1, 0.1, 0.3))  # wrong dims, rejected up front
    assert len(tree) == 1
    # tid 1 can still be inserted correctly afterwards.
    tree.insert(1, (0.2, 0.2))
    assert len(tree) == 2


def test_decompose_single_giant_node_exceeds_page_gracefully():
    """A node blob larger than the page still gets its own (oversized)
    partial rather than being dropped or looping forever."""
    bits = BitArray.ones(4096)
    signature = Signature(4096)
    signature.set_node(0, bits)
    blob = compress(bits, "raw")
    partials = decompose(signature, page_size=len(blob) // 2, codec="raw")
    assert len(partials) == 1
    assert 0 in partials[0].blobs
    assert partials[0].size_bytes > len(blob) // 2


def test_signature_store_missing_codec_never_silently_changes():
    disk = SimulatedDisk()
    with pytest.raises(Exception):
        store = SignatureStore(disk, fanout=4, codec="nope")
        store.put_signature(
            Cell(("A",), ("x",)), Signature.from_paths([(1, 1)], 4)
        )


def test_pcube_reader_unknown_dimension_fails_loudly(small_system):
    with pytest.raises(ValueError):
        small_system.pcube.cover_for_dims({"NOT_A_DIM": 1})


def test_engine_queries_leave_disk_counters_consistent(small_system, rng):
    """Global disk counters only ever grow, and per-query counters are a
    lower bound of the growth (buffer hits absorb the rest)."""
    from repro.data.workload import sample_predicate

    before = small_system.disk.counters.total()
    predicate = sample_predicate(small_system.relation, 1, rng)
    result = small_system.engine.skyline(predicate)
    after = small_system.disk.counters.total()
    assert after >= before
    assert result.stats.total_io() <= after - before + result.stats.total_io()
    assert after - before >= result.stats.total_io()


# ---------------------------------------------------------------------- #
# fault schedules (the storage fault model, end to end)
# ---------------------------------------------------------------------- #


@pytest.mark.faults
def test_transient_fault_schedule_is_transparent(small_system, small_config, rng):
    """A bounded burst of transient read faults is absorbed by retries:
    same answer, nonzero retry counter, no degradation."""
    disk = FaultyDisk(SimulatedDisk())
    faulty = build_system(generate_relation(small_config, disk=disk), fanout=8)
    predicate = sample_predicate(small_system.relation, 1, rng)
    baseline = small_system.engine.skyline(predicate)

    disk.plan = FaultPlan(
        [FaultRule(kind="transient", tag="pcube:sig", count=3)]
    )
    result = faulty.engine.skyline(predicate)
    assert result.tids == baseline.tids
    assert result.stats.fault_retries == 3
    assert not result.stats.degraded
    assert result.stats.failed_loads == 0


@pytest.mark.faults
def test_corruption_degrades_then_rebuild_restores(
    small_system, small_config, rng
):
    """Permanent corruption flips the query to conservative mode (same
    answer, more work); rebuilding the quarantined cell restores full
    pruning at exactly the fault-free cost."""
    disk = FaultyDisk(SimulatedDisk())
    faulty = build_system(generate_relation(small_config, disk=disk), fanout=8)
    predicate = sample_predicate(small_system.relation, 1, rng)
    baseline = small_system.engine.skyline(predicate)

    disk.plan = FaultPlan(
        [FaultRule(kind="corrupt", tag="pcube:sig", count=1)]
    )
    degraded = faulty.engine.skyline(predicate)
    assert degraded.tids == baseline.tids  # correctness survives
    assert degraded.stats.degraded
    assert degraded.stats.failed_loads >= 1
    assert degraded.stats.degraded_checks > 0
    quarantined = faulty.pcube.store.quarantined_cells()
    assert quarantined

    disk.plan = FaultPlan()
    assert faulty.pcube.rebuild_quarantined() == quarantined
    healed = faulty.engine.skyline(predicate)
    assert healed.tids == baseline.tids
    assert not healed.stats.degraded
    assert healed.stats.ssig == baseline.stats.ssig
