"""Stateful model checking: the whole system vs a brute-force oracle.

A hypothesis rule machine interleaves insertions, deletions, preference
updates and queries of every type against a live system, checking each
query answer against naive recomputation over the shadow model.  This is
the widest net for interaction bugs (e.g. a node split leaving a stale
signature bit that only a later roll-up trips over).
"""

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.baselines.naive import naive_skyline, naive_topk
from repro.core.maintenance import delete_tuple, insert_tuple, update_tuple
from repro.core.signature import Signature
from repro.cube.relation import Relation
from repro.cube.schema import Schema
from repro.query.predicates import BooleanPredicate
from repro.query.ranking import LinearFunction
from repro.system import build_system

CARDINALITY = 3
GRID = 6  # coordinates live on a GRID x GRID lattice (forces ties)

values = st.integers(min_value=0, max_value=CARDINALITY - 1)
coords = st.integers(min_value=0, max_value=GRID - 1)


class PCubeMachine(RuleBasedStateMachine):
    @initialize(
        rows=st.lists(
            st.tuples(values, values, coords, coords), min_size=2, max_size=15
        )
    )
    def build(self, rows):
        schema = Schema(("A", "B"), ("X", "Y"))
        bool_rows = [(a, b) for a, b, _, _ in rows]
        pref_rows = [(x / GRID, y / GRID) for _, _, x, y in rows]
        self.relation = Relation(schema, bool_rows, pref_rows)
        self.system = build_system(
            self.relation, fanout=4, rtree_method="insert", with_indexes=False
        )
        self.alive = set(self.relation.tids())

    # ------------------------------------------------------------------ #
    # mutations
    # ------------------------------------------------------------------ #

    @rule(a=values, b=values, x=coords, y=coords)
    def insert(self, a, b, x, y):
        insert_tuple(
            self.relation,
            self.system.rtree,
            self.system.pcube,
            (a, b),
            (x / GRID, y / GRID),
        )
        self.alive.add(len(self.relation) - 1)

    @precondition(lambda self: len(self.alive) > 1)
    @rule(index=st.integers(min_value=0, max_value=10**6))
    def delete(self, index):
        tid = sorted(self.alive)[index % len(self.alive)]
        delete_tuple(self.relation, self.system.rtree, self.system.pcube, tid)
        self.alive.discard(tid)

    @precondition(lambda self: self.alive)
    @rule(index=st.integers(min_value=0, max_value=10**6), x=coords, y=coords)
    def move(self, index, x, y):
        tid = sorted(self.alive)[index % len(self.alive)]
        update_tuple(
            self.relation,
            self.system.rtree,
            self.system.pcube,
            tid,
            (x / GRID, y / GRID),
        )

    # ------------------------------------------------------------------ #
    # queries (each checked against the shadow model)
    # ------------------------------------------------------------------ #

    def _qualifying(self, predicate):
        return [
            (tid, self.relation.pref_point(tid))
            for tid in self.alive
            if predicate.matches(self.relation, tid)
        ]

    @rule(a=values)
    def skyline_one_predicate(self, a):
        predicate = BooleanPredicate({"A": a})
        result = self.system.engine.skyline(predicate)
        assert set(result.tids) == set(naive_skyline(self._qualifying(predicate)))

    @rule(a=values, b=values)
    def skyline_two_predicates(self, a, b):
        predicate = BooleanPredicate({"A": a, "B": b})
        result = self.system.engine.skyline(predicate)
        assert set(result.tids) == set(naive_skyline(self._qualifying(predicate)))

    @rule(a=values, b=values, k=st.integers(min_value=1, max_value=6),
          w1=st.floats(min_value=0.1, max_value=2.0),
          w2=st.floats(min_value=0.1, max_value=2.0))
    def topk_query(self, a, b, k, w1, w2):
        predicate = BooleanPredicate({"A": a, "B": b})
        fn = LinearFunction([w1, w2])
        result = self.system.engine.topk(fn, k, predicate)
        expected = naive_topk(self._qualifying(predicate), fn, k)
        assert len(result.tids) == len(expected)
        for got, (_, want) in zip(result.scores, expected):
            assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-12)

    @rule(a=values, b=values)
    def drill_then_roll(self, a, b):
        base_pred = BooleanPredicate({"A": a})
        base = self.system.engine.skyline(base_pred)
        drilled = self.system.engine.drill_down(base, "B", b)
        expected = set(
            naive_skyline(self._qualifying(BooleanPredicate({"A": a, "B": b})))
        )
        assert set(drilled.tids) == expected
        rolled = self.system.engine.roll_up(drilled, "B")
        assert set(rolled.tids) == set(base.tids)

    # ------------------------------------------------------------------ #
    # structural invariants after every step
    # ------------------------------------------------------------------ #

    @invariant()
    def signatures_exact(self):
        if not hasattr(self, "system"):
            return
        paths = self.system.rtree.all_paths()
        assert set(paths) == self.alive
        for cuboid in self.system.pcube.cuboids:
            groups: dict = {}
            for tid in self.alive:
                groups.setdefault(
                    cuboid.cell_for(self.relation, tid), []
                ).append(tid)
            for cell, tids in groups.items():
                expected = Signature.from_paths(
                    [paths[t] for t in tids], self.system.rtree.max_entries
                )
                assert self.system.pcube.signature_of(cell) == expected


PCubeMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=25, deadline=None
)
TestPCubeMachine = PCubeMachine.TestCase
