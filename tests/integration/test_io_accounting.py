"""End-to-end I/O properties: the claims behind Figures 6, 9, 15 and 16,
plus the Lemma 1 optimality statement, checked mechanically."""

import pytest

from repro.baselines.domination_first import domination_first_skyline
from repro.data.workload import sample_predicate
from repro.query.algorithm1 import SkylineStrategy, run_algorithm1
from repro.query.skyline import skyline_signature
from repro.query.stats import QueryStats
from repro.rtree.node import subtree_tids
from repro.storage.buffer import BufferPool
from repro.storage.counters import SBLOCK


class RecordingPool(BufferPool):
    """A buffer pool that remembers which pages it served."""

    def __init__(self, disk):
        super().__init__(disk, capacity=4096)
        self.pages: list[int] = []

    def get(self, page_id, category, counters=None):
        self.pages.append(page_id)
        return super().get(page_id, category, counters)


def test_lemma1_expanded_blocks_contain_qualifying_data(small_system, rng):
    """Lemma 1's substance: with exact boolean answers from signatures,
    every R-tree block the search expands holds at least one tuple that
    satisfies the predicate (no wasted block reads on boolean grounds)."""
    relation = small_system.relation
    for _ in range(5):
        predicate = sample_predicate(relation, 2, rng)
        pool = RecordingPool(small_system.rtree.disk)
        reader = small_system.pcube.reader_for_cells(
            predicate.atomic_cells(), pool, eager=True
        )
        stats = QueryStats()
        run_algorithm1(
            small_system.rtree,
            SkylineStrategy(small_system.rtree.dims),
            stats,
            reader=reader,
            pool=pool,
            block_category=SBLOCK,
        )
        nodes_by_page = {
            node.page_id: node for node in small_system.rtree.nodes()
        }
        for page_id in pool.pages:
            node = nodes_by_page.get(page_id)
            if node is None:
                continue  # a signature or index page
            assert any(
                predicate.matches(relation, tid)
                for tid in subtree_tids(node)
            ), "expanded a block with no qualifying tuple"


def test_signature_blocks_subset_of_domination_blocks(small_system, rng):
    """The signature method reads a subset of the blocks Domination reads:
    both prune by dominance, Signature additionally prunes by booleans."""
    relation = small_system.relation
    for _ in range(5):
        predicate = sample_predicate(relation, 1, rng)

        sig_pool = RecordingPool(small_system.rtree.disk)
        reader = small_system.pcube.reader_for_cells(
            predicate.atomic_cells(), sig_pool
        )
        run_algorithm1(
            small_system.rtree,
            SkylineStrategy(2),
            QueryStats(),
            reader=reader,
            pool=sig_pool,
        )
        dom_pool = RecordingPool(small_system.rtree.disk)
        domination_first_skyline(
            relation, small_system.rtree, predicate, pool=dom_pool
        )
        node_pages = {n.page_id for n in small_system.rtree.nodes()}
        sig_blocks = set(sig_pool.pages) & node_pages
        dom_blocks = set(dom_pool.pages) & node_pages
        assert sig_blocks <= dom_blocks


def test_ssig_far_below_sblock(small_system, rng):
    """Fig. 9 claim (1): signature loading is a small fraction of the
    signature method's block reads — one partial encodes many nodes."""
    total_ssig = total_sblock = 0
    for _ in range(8):
        predicate = sample_predicate(small_system.relation, 1, rng)
        _, stats, _ = skyline_signature(
            small_system.relation,
            small_system.rtree,
            small_system.pcube,
            predicate,
        )
        total_ssig += stats.ssig
        total_sblock += stats.sblock
    assert total_ssig < total_sblock


def test_pcube_smaller_than_rtree_and_btrees():
    """Fig. 6 shape at paper-like parameters (page-derived fanout, C=100):
    the signature materialisation is smaller than both the R-tree it
    summarises and the per-dimension B+-trees."""
    from repro.data.synthetic import SyntheticConfig, generate_relation
    from repro.system import build_system

    relation = generate_relation(
        SyntheticConfig(n_tuples=8000, cardinality=100, seed=33)
    )
    system = build_system(relation)
    assert system.pcube_size_mb() < system.rtree_size_mb()
    assert system.pcube_size_mb() < system.btree_size_mb()


def test_signature_loading_time_is_minor(small_system, rng):
    """Fig. 15 shape: loading time stays a small fraction of query time."""
    predicate = sample_predicate(small_system.relation, 3, rng)
    result = small_system.engine.skyline(predicate)
    assert result.stats.sig_load_seconds <= result.stats.elapsed_seconds


def test_drill_down_reads_fewer_blocks_than_fresh(small_system, rng):
    """Fig. 16 shape, as an invariant rather than a timing."""
    for _ in range(5):
        predicate = sample_predicate(small_system.relation, 2, rng)
        dims = predicate.dims()
        conjuncts = predicate.conjuncts
        base = small_system.engine.skyline(
            predicate.roll_up(dims[1])
        )
        drilled = small_system.engine.drill_down(
            base, dims[1], conjuncts[dims[1]]
        )
        fresh = small_system.engine.skyline(predicate)
        assert set(drilled.tids) == set(fresh.tids)
        assert drilled.stats.sblock <= fresh.stats.sblock


def test_empty_predicate_reads_no_signatures(small_system):
    result = small_system.engine.skyline()
    assert result.stats.ssig == 0


def test_every_method_reports_elapsed_time(small_system, rng):
    predicate = sample_predicate(small_system.relation, 1, rng)
    result = small_system.engine.skyline(predicate)
    assert result.stats.elapsed_seconds > 0.0
    summary = result.stats.summary()
    assert summary["results"] == len(result.tids)
    assert summary["total_io"] == result.stats.total_io()
