"""The signature store and its lazily loading readers."""

import pytest

from repro.core.signature import Signature
from repro.core.store import (
    AssembledReader,
    CellSignatureReader,
    MissingPartialError,
    SignatureStore,
)
from repro.cube.cuboid import Cell
from repro.storage.buffer import BufferPool
from repro.storage.counters import SSIG, IOCounters
from repro.storage.disk import SimulatedDisk
from repro.storage.errors import TornWriteError
from repro.storage.faults import FaultPlan, FaultRule, FaultyDisk

FANOUT = 4
CELL = Cell(("A",), ("a1",))
OTHER = Cell(("A",), ("a2",))


@pytest.fixture
def disk():
    # Tiny pages force multi-partial decomposition.
    return SimulatedDisk(page_size=48)


@pytest.fixture
def store(disk):
    return SignatureStore(disk, fanout=FANOUT, codec="raw")


def wide_signature():
    paths = [(a, b, c) for a in (1, 2, 3) for b in (1, 2) for c in (1, 2)]
    return Signature.from_paths(paths, FANOUT)


def test_put_and_full_reload(store):
    signature = wide_signature()
    n_partials = store.put_signature(CELL, signature)
    assert n_partials > 1
    assert store.has_cell(CELL)
    assert store.n_partials(CELL) == n_partials
    assert store.load_full_signature(CELL) == signature


def test_missing_cell(store):
    assert not store.has_cell(OTHER)
    assert store.load_partial(OTHER, 0) is None
    assert store.load_full_signature(OTHER) == Signature(FANOUT)


def test_loads_are_counted(store, disk):
    store.put_signature(CELL, wide_signature())
    counters = IOCounters()
    store.load_full_signature(CELL, counters=counters)
    assert counters.get(SSIG) == store.n_partials(CELL)


def test_replace_frees_old_pages(store, disk):
    store.put_signature(CELL, wide_signature())
    before = disk.page_count("pcube:sig")
    store.put_signature(CELL, Signature.from_paths([(1, 1)], FANOUT))
    after = disk.page_count("pcube:sig")
    assert after < before
    assert store.load_full_signature(CELL) == Signature.from_paths(
        [(1, 1)], FANOUT
    )


def test_reader_loads_root_partial_up_front(store):
    store.put_signature(CELL, wide_signature())
    counters = IOCounters()
    reader = store.reader(CELL, counters=counters)
    assert counters.get(SSIG) == 1
    assert reader.loads == 1


def test_reader_checks_without_extra_loads_when_resident(store):
    signature = Signature.from_paths([(1, 2)], FANOUT)
    store.put_signature(CELL, signature)  # fits one partial
    counters = IOCounters()
    reader = store.reader(CELL, counters=counters)
    assert reader.check_entry((), 1)
    assert not reader.check_entry((), 3)
    assert reader.check_entry((1,), 2)
    assert counters.get(SSIG) == 1  # still just the root partial


def test_reader_lazy_loading_on_demand(store):
    signature = wide_signature()
    store.put_signature(CELL, signature)
    counters = IOCounters()
    reader = store.reader(CELL, counters=counters)
    loads_before = reader.loads
    # Probe a deep entry that is not in the first partial.
    for path in signature.tuple_paths():
        reader.check_path(path)
    assert reader.loads > loads_before
    assert reader.loads <= store.n_partials(CELL)
    assert counters.get(SSIG) == reader.loads


def test_reader_results_match_signature(store):
    signature = wide_signature()
    store.put_signature(CELL, signature)
    reader = store.reader(CELL)
    for a in range(1, FANOUT + 1):
        for b in range(1, FANOUT + 1):
            for c in range(1, FANOUT + 1):
                assert reader.check_path((a, b, c)) == signature.check_path(
                    (a, b, c)
                )


def test_reader_through_buffer_pool(store, disk):
    store.put_signature(CELL, wide_signature())
    pool = BufferPool(disk, capacity=64)
    counters = IOCounters()
    reader = store.reader(CELL, pool=pool, counters=counters)
    reader.check_path((1, 1, 1))
    first = counters.get(SSIG)
    # A second reader over the same pool hits the cache.
    counters2 = IOCounters()
    reader2 = store.reader(CELL, pool=pool, counters=counters2)
    reader2.check_path((1, 1, 1))
    assert counters2.get(SSIG) < first or first == 1


def test_reader_empty_path_means_nonempty_cell(store):
    store.put_signature(CELL, Signature.from_paths([(2, 2)], FANOUT))
    reader = store.reader(CELL)
    assert reader.check_path(())
    empty_reader = store.reader(OTHER)
    assert not empty_reader.check_path(())


def test_reader_load_seconds_accumulates(store):
    store.put_signature(CELL, wide_signature())
    reader = store.reader(CELL)
    for path in wide_signature().tuple_paths():
        reader.check_path(path)
    assert reader.load_seconds >= 0.0
    assert reader.loads >= 1


def test_assembled_reader_conjunction(store):
    sig_a = Signature.from_paths([(1, 1), (2, 2)], FANOUT)
    sig_b = Signature.from_paths([(1, 1), (3, 3)], FANOUT)
    store.put_signature(CELL, sig_a)
    store.put_signature(OTHER, sig_b)
    reader = AssembledReader([store.reader(CELL), store.reader(OTHER)])
    assert reader.check_path((1, 1))
    assert not reader.check_path((2, 2))
    assert not reader.check_path((3, 3))
    assert reader.loads >= 2


def test_assembled_reader_requires_readers():
    with pytest.raises(ValueError):
        AssembledReader([])


def test_index_height(store):
    store.put_signature(CELL, wide_signature())
    assert store.index_height() >= 1


def test_missing_partial_is_a_typed_error(store, monkeypatch):
    store.put_signature(CELL, wide_signature())
    monkeypatch.setattr(store, "load_partial", lambda *a, **k: None)
    with pytest.raises(MissingPartialError) as excinfo:
        store.load_full_signature(CELL)
    assert excinfo.value.cell_id == CELL.cell_id


def test_replace_keeps_index_consistent_with_directory(store):
    store.put_signature(CELL, wide_signature())
    n_wide = store.n_partials(CELL)
    assert n_wide > 1
    store.put_signature(CELL, Signature.from_paths([(1, 1)], FANOUT))
    expected = {
        (CELL.cell_id, ref): page
        for ref, page in store._directory[CELL.cell_id].items()
    }
    entries = list(store._index.items())
    # Exactly the live refs: no stale entries for vanished refs, no
    # duplicates for refs that survived the rewrite.
    assert dict(entries) == expected
    assert len(entries) == len(expected)
    for ref in range(n_wide):
        if (CELL.cell_id, ref) not in expected:
            assert store._index.search((CELL.cell_id, ref)) == []


def test_quarantine_and_rebuild(store):
    signature = wide_signature()
    store.put_signature(CELL, signature)
    store.quarantine(CELL, "corrupt page")
    assert store.is_quarantined(CELL)
    assert store.quarantined_cells() == [CELL]
    assert store.fault_stats.quarantines == 1
    store.quarantine(CELL, "again")  # re-quarantining is not double-counted
    assert store.fault_stats.quarantines == 1
    store.rebuild_cell(CELL, signature)
    assert not store.is_quarantined(CELL)
    assert store.fault_stats.rebuilds == 1
    assert store.load_full_signature(CELL) == signature


def test_load_partial_retries_transient_faults():
    disk = FaultyDisk(SimulatedDisk(page_size=48))
    store = SignatureStore(disk, fanout=FANOUT, codec="raw")
    signature = wide_signature()
    store.put_signature(CELL, signature)
    disk.plan = FaultPlan([FaultRule(kind="transient", count=2)])
    assert store.load_full_signature(CELL) == signature
    assert store.fault_stats.retries == 2
    assert store.fault_stats.transient_errors == 0  # none outlived retries


def test_torn_rewrite_leaves_old_partials_readable():
    disk = FaultyDisk(SimulatedDisk(page_size=48))
    store = SignatureStore(disk, fanout=FANOUT, codec="raw")
    old = wide_signature()
    store.put_signature(CELL, old)
    pages_before = disk.page_count("pcube:sig")
    # First new-generation page lands, the second allocation tears.
    disk.plan = FaultPlan(
        [FaultRule(kind="torn", op="allocate", tag="pcube:sig", after=1, count=1)]
    )
    with pytest.raises(TornWriteError):
        store.put_signature(CELL, old)
    assert store.load_full_signature(CELL) == old  # old generation intact
    assert disk.page_count("pcube:sig") == pages_before + 1  # one orphan
    assert store.recover() == 1
    assert disk.page_count("pcube:sig") == pages_before  # orphan reclaimed
    replacement = Signature.from_paths([(2, 2)], FANOUT)
    store.put_signature(CELL, replacement)
    assert store.load_full_signature(CELL) == replacement


def test_reader_degrades_on_corrupt_partial():
    disk = FaultyDisk(SimulatedDisk(page_size=48))
    store = SignatureStore(disk, fanout=FANOUT, codec="raw")
    store.put_signature(CELL, Signature.from_paths([(1, 2)], FANOUT))
    disk.plan = FaultPlan([FaultRule(kind="corrupt", tag="pcube:sig", count=1)])
    reader = store.reader(CELL)
    assert reader.degraded
    assert reader.failed_loads == 1
    assert store.is_quarantined(CELL)
    # Conservative mode: unresolvable bit tests answer True — pruning is
    # lost, correctness is not.
    assert reader.check_entry((), 1)
    assert reader.check_entry((), 3)
    assert reader.degraded_checks == 2


def test_reader_degraded_mode_uses_exact_fallback():
    disk = FaultyDisk(SimulatedDisk(page_size=48))
    store = SignatureStore(disk, fanout=FANOUT, codec="raw")
    store.put_signature(CELL, Signature.from_paths([(1, 2)], FANOUT))
    disk.plan = FaultPlan([FaultRule(kind="corrupt", tag="pcube:sig", count=1)])
    probed = []

    def fallback(cell, path, counters):
        probed.append(path)
        return path == (1, 2)

    reader = store.reader(CELL, fallback=fallback)
    assert reader.degraded
    assert reader.check_path((1, 2))
    assert not reader.check_path((1, 3))  # exact, not conservative
    assert probed == [(1, 2), (1, 3)]
