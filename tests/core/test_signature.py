"""Signature trees: construction, bit tests, path enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap.bitarray import BitArray
from repro.core.signature import Signature
from repro.core.sid import sid_of_path


def test_empty_signature():
    signature = Signature(4)
    assert not signature
    assert signature.n_nodes() == 0
    assert not signature.check_path((1,))
    assert list(signature.tuple_paths()) == []


def test_add_path_sets_all_prefix_bits():
    signature = Signature(4)
    signature.add_path((2, 3, 1))
    assert signature.check_bit(0, 2)
    assert signature.check_bit(sid_of_path((2,), 4), 3)
    assert signature.check_bit(sid_of_path((2, 3), 4), 1)
    assert not signature.check_bit(0, 1)
    assert signature.check_path((2, 3, 1))
    assert signature.check_path((2, 3))  # prefix of a data path
    assert not signature.check_path((2, 1))


def test_add_path_idempotent():
    signature = Signature(4)
    signature.add_path((1, 2))
    snapshot = signature.copy()
    signature.add_path((1, 2))
    assert signature == snapshot


def test_add_path_validation():
    signature = Signature(4)
    with pytest.raises(ValueError):
        signature.add_path(())
    with pytest.raises(ValueError):
        signature.add_path((5,))
    with pytest.raises(ValueError):
        signature.add_path((0,))


def test_from_paths_equals_incremental():
    paths = [(1, 2), (1, 3), (4, 1), (2, 2)]
    incremental = Signature(4)
    for path in paths:
        incremental.add_path(path)
    assert Signature.from_paths(paths, 4) == incremental


def test_tuple_paths_roundtrip():
    paths = {(1, 2, 1), (1, 2, 3), (2, 1, 1), (3, 3, 3)}
    signature = Signature.from_paths(paths, 3)
    assert set(signature.tuple_paths()) == paths


def test_contains_subtree():
    signature = Signature.from_paths([(2, 1)], 4)
    assert signature.contains_subtree(())
    assert signature.contains_subtree((2,))
    assert signature.contains_subtree((2, 1))
    assert not signature.contains_subtree((1,))
    assert not Signature(4).contains_subtree(())


def test_set_node_and_drop_node():
    signature = Signature(4)
    signature.set_node(0, BitArray.from_positions(4, [0, 2]))
    assert signature.check_bit(0, 1)
    signature.set_node(0, BitArray(4))  # all-zero removes the node
    assert signature.n_nodes() == 0
    signature.set_node(0, BitArray.from_positions(4, [1]))
    signature.drop_node(0)
    assert signature.n_nodes() == 0


def test_set_node_width_checked():
    signature = Signature(4)
    with pytest.raises(ValueError):
        signature.set_node(0, BitArray(5))


def test_copy_is_deep():
    signature = Signature.from_paths([(1, 1)], 4)
    clone = signature.copy()
    clone.add_path((2, 2))
    assert not signature.check_path((2, 2))


def test_signatures_unhashable():
    with pytest.raises(TypeError):
        hash(Signature(4))


def test_set_bit_count():
    signature = Signature.from_paths([(1, 1), (1, 2)], 4)
    # root: bit 1; node ⟨1⟩: bits 1 and 2 -> 3 total
    assert signature.set_bit_count() == 3


def test_fanout_minimum():
    with pytest.raises(ValueError):
        Signature(1)


path_sets = st.integers(min_value=2, max_value=12).flatmap(
    lambda m: st.tuples(
        st.just(m),
        st.sets(
            st.lists(
                st.integers(min_value=1, max_value=m), min_size=1, max_size=4
            ).map(tuple),
            min_size=0,
            max_size=30,
        ),
    )
)


@settings(max_examples=60, deadline=None)
@given(path_sets)
def test_check_path_accepts_exactly_prefixes(data):
    """check_path(p) holds iff p is a prefix of some inserted path."""
    fanout, paths = data
    signature = Signature.from_paths(paths, fanout)
    prefixes = {path[:i] for path in paths for i in range(1, len(path) + 1)}
    # Probe all prefixes plus some perturbed non-members.
    for prefix in prefixes:
        assert signature.check_path(prefix)
    for path in paths:
        probe = path + (1,) if len(path) < 4 else path[:-1] + (
            path[-1] % fanout + 1,
        )
        assert signature.check_path(probe) == (
            probe in prefixes or any(
                other[: len(probe)] == probe for other in paths
            )
        )
