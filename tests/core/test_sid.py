"""SID arithmetic: the injective path numeration."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sid import (
    ancestor_sids,
    child_sid,
    parent_sid,
    path_of_sid,
    sid_of_path,
)


def test_root_is_zero():
    assert sid_of_path((), 10) == 0
    assert path_of_sid(0, 10) == ()


def test_paper_example():
    assert sid_of_path((1, 1), 2) == 4  # node N3 in the paper


def test_single_components():
    for fanout in (2, 5, 100):
        for position in range(1, fanout + 1):
            assert sid_of_path((position,), fanout) == position


def test_component_bounds():
    with pytest.raises(ValueError):
        sid_of_path((0,), 4)
    with pytest.raises(ValueError):
        sid_of_path((5,), 4)


def test_invalid_sid_inversion():
    # SID 3 with fanout 2 would need digit 0.
    with pytest.raises(ValueError):
        path_of_sid(3, 2)
    with pytest.raises(ValueError):
        path_of_sid(-1, 2)


def test_parent_and_child():
    fanout = 7
    sid = sid_of_path((3, 5, 2), fanout)
    assert parent_sid(sid, fanout) == sid_of_path((3, 5), fanout)
    assert child_sid(sid_of_path((3, 5), fanout), 2, fanout) == sid


def test_parent_of_root_rejected():
    with pytest.raises(ValueError):
        parent_sid(0, 4)


def test_child_position_bounds():
    with pytest.raises(ValueError):
        child_sid(0, 0, 4)
    with pytest.raises(ValueError):
        child_sid(0, 5, 4)


def test_ancestor_sids():
    fanout = 3
    path = (2, 1, 3)
    sids = ancestor_sids(path, fanout)
    assert sids == [
        0,
        sid_of_path((2,), fanout),
        sid_of_path((2, 1), fanout),
        sid_of_path((2, 1, 3), fanout),
    ]


paths = st.integers(min_value=2, max_value=200).flatmap(
    lambda m: st.tuples(
        st.just(m),
        st.lists(st.integers(min_value=1, max_value=m), max_size=8).map(tuple),
    )
)


@given(paths)
def test_roundtrip_property(data):
    fanout, path = data
    assert path_of_sid(sid_of_path(path, fanout), fanout) == path


@given(paths, paths)
def test_injectivity_property(a, b):
    fanout_a, path_a = a
    fanout_b, path_b = b
    if fanout_a == fanout_b and path_a != path_b:
        assert sid_of_path(path_a, fanout_a) != sid_of_path(path_b, fanout_b)
