"""The paper's running example, verified bit for bit.

Table I (the eight-tuple database with paths), Figure 1 (the R-tree with
m = 1, M = 2), Figure 2 (the (A=a1)-signature and its SIDs), Figure 3
(union / intersection assembly for (A=a2) and (B=b2)) and Figure 4
(inserting t4 flips exactly the entries on its path).
"""

import pytest

from repro.bitmap.bitarray import BitArray
from repro.core.generation import signature_by_recursive_sort
from repro.core.ops import intersect, union
from repro.core.partial import decompose, reassemble
from repro.core.sid import sid_of_path
from repro.core.signature import Signature

from tests.conftest import PAPER_PATHS

M = 2  # the example's fanout


def bits(pattern: str) -> BitArray:
    """Build a width-M bit array from a left-to-right pattern like "10"."""
    return BitArray.from_positions(
        M, [i for i, ch in enumerate(pattern) if ch == "1"]
    )


def cell_paths(paper_relation, dim, value):
    return [
        PAPER_PATHS[tid]
        for tid in range(8)
        if paper_relation.bool_row(tid)[0 if dim == "A" else 1] == value
    ]


# --------------------------------------------------------------------------- #
# Table I / Figure 1
# --------------------------------------------------------------------------- #


def test_paper_rtree_reproduces_table_i_paths(paper_rtree):
    for tid, path in PAPER_PATHS.items():
        assert paper_rtree.path_of(tid) == path


def test_paper_rtree_shape(paper_rtree):
    assert paper_rtree.height() == 3
    assert paper_rtree.node_count() == 7  # root, N1-N2, N3-N6


# --------------------------------------------------------------------------- #
# Figure 2: the (A=a1)-signature
# --------------------------------------------------------------------------- #


def test_a1_signature_matches_figure_2(paper_relation):
    signature = signature_by_recursive_sort(
        cell_paths(paper_relation, "A", "a1"), M
    )
    # Figure 2a: root 10, N1 11, N3 10, N4 10 — nothing else.
    assert signature.node(sid_of_path((), M)) == bits("10")
    assert signature.node(sid_of_path((1,), M)) == bits("11")
    assert signature.node(sid_of_path((1, 1), M)) == bits("10")
    assert signature.node(sid_of_path((1, 2), M)) == bits("10")
    assert signature.n_nodes() == 4


def test_sid_example_from_paper():
    # "the path of the node N3 is ⟨1, 1⟩. Its SID is 4." (M = 2)
    assert sid_of_path((1, 1), M) == 4
    assert sid_of_path((1,), M) == 1  # N1, used as a partial reference
    assert sid_of_path((), M) == 0  # the root


def test_signature_paths_recover_tuples(paper_relation):
    signature = signature_by_recursive_sort(
        cell_paths(paper_relation, "A", "a1"), M
    )
    assert sorted(signature.tuple_paths()) == sorted(
        [PAPER_PATHS[0], PAPER_PATHS[2]]
    )


# --------------------------------------------------------------------------- #
# Figure 3: assembling (A=a2) and (B=b2)
# --------------------------------------------------------------------------- #


@pytest.fixture
def a2_signature(paper_relation):
    return signature_by_recursive_sort(cell_paths(paper_relation, "A", "a2"), M)


@pytest.fixture
def b2_signature(paper_relation):
    return signature_by_recursive_sort(cell_paths(paper_relation, "B", "b2"), M)


def test_a2_signature_structure(a2_signature):
    # A=a2 holds t2 ⟨1,1,2⟩ and t6 ⟨2,1,2⟩.
    assert a2_signature.node(0) == bits("11")
    assert a2_signature.node(sid_of_path((1,), M)) == bits("10")
    assert a2_signature.node(sid_of_path((2,), M)) == bits("10")
    assert a2_signature.node(sid_of_path((1, 1), M)) == bits("01")
    assert a2_signature.node(sid_of_path((2, 1), M)) == bits("01")


def test_b2_signature_structure(b2_signature):
    # B=b2 holds t2 ⟨1,1,2⟩ and t7 ⟨2,2,1⟩.
    assert b2_signature.node(0) == bits("11")
    assert b2_signature.node(sid_of_path((1,), M)) == bits("10")
    assert b2_signature.node(sid_of_path((2,), M)) == bits("01")
    assert b2_signature.node(sid_of_path((1, 1), M)) == bits("01")
    assert b2_signature.node(sid_of_path((2, 2), M)) == bits("10")


def test_figure_3b_union(a2_signature, b2_signature, paper_relation):
    """(A=a2 OR B=b2) selects t2, t6, t7 — the union signature is exactly
    the signature built from those tuples' paths."""
    combined = union(a2_signature, b2_signature)
    expected = Signature.from_paths(
        [PAPER_PATHS[1], PAPER_PATHS[5], PAPER_PATHS[6]], M
    )
    assert combined == expected


def test_figure_3c_intersection(a2_signature, b2_signature):
    """(A=a2 AND B=b2) selects only t2 ⟨1,1,2⟩.  Both inputs have root bit
    2 set (t6 and t7 live under node N2) but share no tuple there — the
    recursive operator must clear it."""
    combined = intersect(a2_signature, b2_signature)
    expected = Signature.from_paths([PAPER_PATHS[1]], M)
    assert combined == expected
    assert combined.node(0) == bits("10")  # root bit 2 cleared


# --------------------------------------------------------------------------- #
# Figure 4: inserting t4
# --------------------------------------------------------------------------- #


def test_figure_4_insertion_flips_only_the_new_path(paper_relation):
    """Before t4: the (A=a3)-signature covers only t8 ⟨2,2,2⟩.  Inserting
    t4 at path ⟨1,2,2⟩ flips exactly the entries on that path."""
    before = Signature.from_paths([PAPER_PATHS[7]], M)
    assert before.node(0) == bits("01")
    after = before.copy()
    after.add_path(PAPER_PATHS[3])  # t4 -> ⟨1,2,2⟩
    expected = Signature.from_paths([PAPER_PATHS[7], PAPER_PATHS[3]], M)
    assert after == expected
    assert after.node(0) == bits("11")
    assert after.node(sid_of_path((1,), M)) == bits("01")
    assert after.node(sid_of_path((1, 2), M)) == bits("01")
    # t8's side is untouched.
    assert after.node(sid_of_path((2,), M)) == before.node(
        sid_of_path((2,), M)
    )


# --------------------------------------------------------------------------- #
# Section IV-B.1's decomposition walkthrough
# --------------------------------------------------------------------------- #


def test_decomposition_walkthrough(paper_relation):
    """With a page too small for the whole (A=a1)-signature, the first
    partial is referenced by the root (SID 0) and a later one by N1
    (SID 1), exactly as the paper's example narrates."""
    signature = signature_by_recursive_sort(
        cell_paths(paper_relation, "A", "a1"), M
    )
    # Each coded node costs 4 bytes here; a 24-byte page (16-byte header
    # plus two nodes) fits the root and N1 but not the leaves.
    partials = decompose(signature, page_size=24, codec="raw")
    assert partials[0].ref_sid == 0
    assert len(partials) > 1
    assert partials[1].ref_sid == sid_of_path((1,), M)
    assert reassemble(partials, M) == signature
