"""Union / intersection semantics (Fig. 3) and the lazy-AND view."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ops import (
    LazyIntersection,
    intersect,
    intersect_all,
    union,
    union_all,
)
from repro.core.signature import Signature

FANOUT = 4

# Tuple paths over one R-tree template all share the tree's height, so a
# leaf slot can never double as an internal node.  The strategies honour
# that invariant with fixed-length paths.
path_lists = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=FANOUT), min_size=3, max_size=3
    ).map(tuple),
    max_size=25,
)


def sig(paths):
    return Signature.from_paths(paths, FANOUT)


def test_union_is_path_union():
    a = sig([(1, 1), (2, 2)])
    b = sig([(1, 2), (2, 2)])
    assert union(a, b) == sig([(1, 1), (1, 2), (2, 2)])


def test_union_does_not_mutate_inputs():
    a = sig([(1, 1)])
    b = sig([(2, 2)])
    union(a, b)
    assert a == sig([(1, 1)])
    assert b == sig([(2, 2)])


def test_intersection_is_path_intersection():
    a = sig([(1, 1), (2, 2), (3, 1)])
    b = sig([(1, 1), (2, 1), (3, 1)])
    assert intersect(a, b) == sig([(1, 1), (3, 1)])


def test_intersection_clears_empty_internal_bits():
    """Both inputs have data under node ⟨1⟩ but no common tuple there: the
    recursive operator must clear the root bit (the Fig. 3c situation)."""
    a = sig([(1, 1), (2, 1)])
    b = sig([(1, 2), (2, 1)])
    result = intersect(a, b)
    assert result == sig([(2, 1)])
    assert not result.check_bit(0, 1)


def test_intersection_empty_result():
    a = sig([(1, 1)])
    b = sig([(2, 2)])
    result = intersect(a, b)
    assert not result
    assert result.n_nodes() == 0


def test_intersect_with_empty_signature():
    a = sig([(1, 1)])
    assert not intersect(a, Signature(FANOUT))


def test_fanout_mismatch_rejected():
    with pytest.raises(ValueError):
        union(Signature(3), Signature(4))
    with pytest.raises(ValueError):
        intersect(Signature(3), Signature(4))


def test_union_all_and_intersect_all():
    a, b, c = sig([(1, 1)]), sig([(1, 1), (2, 2)]), sig([(1, 1), (3, 3)])
    assert union_all([a, b, c]) == sig([(1, 1), (2, 2), (3, 3)])
    assert intersect_all([a, b, c]) == sig([(1, 1)])
    assert intersect_all([a]) == a
    with pytest.raises(ValueError):
        union_all([])
    with pytest.raises(ValueError):
        intersect_all([])


def test_intersect_all_single_returns_copy():
    a = sig([(1, 1)])
    result = intersect_all([a])
    result.add_path((2, 2))
    assert a == sig([(1, 1)])  # input unchanged


@settings(max_examples=60, deadline=None)
@given(path_lists, path_lists)
def test_union_intersection_set_semantics(paths_a, paths_b):
    """Union/intersection of signatures equal the signatures of the path
    set union/intersection — the defining property."""
    a, b = sig(paths_a), sig(paths_b)
    assert union(a, b) == sig(list(set(paths_a) | set(paths_b)))
    assert intersect(a, b) == sig(list(set(paths_a) & set(paths_b)))


@settings(max_examples=40, deadline=None)
@given(path_lists, path_lists)
def test_lazy_intersection_is_conservative_and_leaf_exact(paths_a, paths_b):
    a, b = sig(paths_a), sig(paths_b)
    exact = intersect(a, b)
    lazy = LazyIntersection([a, b])
    shared = set(paths_a) & set(paths_b)
    # Exact on full tuple paths (leaf slots).
    for path in set(paths_a) | set(paths_b):
        assert lazy.check_path(path) == (path in shared)
    # Conservative on internal prefixes: everything the exact operator
    # keeps, the lazy view also passes.
    for path in shared:
        for i in range(1, len(path)):
            assert lazy.check_path(path[:i])
            assert exact.check_path(path[:i])


def test_lazy_intersection_validation():
    with pytest.raises(ValueError):
        LazyIntersection([])
    with pytest.raises(ValueError):
        LazyIntersection([Signature(3), Signature(4)])


def test_lazy_intersection_check_bit():
    a = sig([(1, 1)])
    b = sig([(1, 2)])
    lazy = LazyIntersection([a, b])
    assert lazy.check_bit(0, 1)  # both have data under node 1 (false pos.)
    assert not intersect(a, b).check_bit(0, 1)  # exact clears it
