"""Counted signatures: the O(depth) maintenance bookkeeping."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counted import CountedSignature
from repro.core.signature import Signature


def test_add_then_view():
    counted = CountedSignature(4)
    counted.add_path((1, 2))
    counted.add_path((1, 3))
    assert counted.to_signature() == Signature.from_paths([(1, 2), (1, 3)], 4)


def test_counts_accumulate():
    counted = CountedSignature(4)
    counted.add_path((1, 2))
    counted.add_path((1, 3))
    assert counted.count(0, 1) == 2  # two tuples under root child 1
    assert counted.count(1, 2) == 1


def test_remove_clears_bit_only_at_zero():
    counted = CountedSignature(4)
    counted.add_path((1, 2))
    counted.add_path((1, 3))
    counted.remove_path((1, 2))
    # Root bit 1 still supported by the second tuple.
    assert counted.check_bit(0, 1)
    assert counted.to_signature() == Signature.from_paths([(1, 3)], 4)
    counted.remove_path((1, 3))
    assert not counted
    assert counted.to_signature().n_nodes() == 0


def test_remove_uncounted_path_fails_loudly():
    counted = CountedSignature(4)
    counted.add_path((1, 2))
    with pytest.raises(KeyError):
        counted.remove_path((2, 2))


def test_move_path():
    counted = CountedSignature(4)
    counted.add_path((1, 1))
    counted.move_path((1, 1), (2, 2))
    assert counted.to_signature() == Signature.from_paths([(2, 2)], 4)


def test_path_validation():
    counted = CountedSignature(4)
    with pytest.raises(ValueError):
        counted.add_path(())
    with pytest.raises(ValueError):
        counted.add_path((0,))
    with pytest.raises(ValueError):
        counted.remove_path(())


def test_from_paths():
    paths = [(1, 1), (1, 1), (2, 3)]  # duplicate path counted twice
    counted = CountedSignature.from_paths(paths, 4)
    assert counted.count(0, 1) == 2
    counted.remove_path((1, 1))
    assert counted.check_bit(0, 1)  # still one left


def test_dirty_sids():
    counted = CountedSignature(4)
    assert counted.dirty_sids((2, 1, 3)) == [0, 2, 2 * 5 + 1]


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.booleans(),
            st.lists(
                st.integers(min_value=1, max_value=4), min_size=1, max_size=4
            ).map(tuple),
        ),
        max_size=60,
    )
)
def test_counted_matches_multiset_model(operations):
    """Random add/remove streams: the bitmap view must always equal the
    signature of the surviving path multiset."""
    counted = CountedSignature(4)
    model: list[tuple] = []
    for is_add, path in operations:
        if is_add or path not in model:
            counted.add_path(path)
            model.append(path)
        else:
            counted.remove_path(path)
            model.remove(path)
        assert counted.to_signature() == Signature.from_paths(model, 4)


def test_interleaved_stress():
    rng = random.Random(12)
    counted = CountedSignature(6)
    alive: list[tuple] = []
    for _ in range(500):
        if alive and rng.random() < 0.45:
            path = alive.pop(rng.randrange(len(alive)))
            counted.remove_path(path)
        else:
            path = tuple(
                rng.randrange(1, 7) for _ in range(rng.randrange(1, 5))
            )
            counted.add_path(path)
            alive.append(path)
    assert counted.to_signature() == Signature.from_paths(alive, 6)
