"""Incremental maintenance: signatures stay exact under any mutation mix."""

import random

import pytest

from repro.core.maintenance import (
    delete_tuple,
    insert_batch,
    insert_tuple,
    merge_changes,
    update_tuple,
)
from repro.core.signature import Signature
from repro.rtree.rtree import PathChange


def verify_all_signatures(system, alive=None):
    """Every stored signature equals one rebuilt from current paths."""
    relation, rtree, pcube = system.relation, system.rtree, system.pcube
    tids = list(alive) if alive is not None else list(relation.tids())
    paths = rtree.all_paths()
    for cuboid in pcube.cuboids:
        groups: dict = {}
        for tid in tids:
            cell = cuboid.cell_for(relation, tid)
            groups.setdefault(cell, []).append(tid)
        for cell, members in groups.items():
            expected = Signature.from_paths(
                [paths[tid] for tid in members], rtree.max_entries
            )
            assert pcube.signature_of(cell) == expected, f"{cell} diverged"


# --------------------------------------------------------------------------- #
# merge_changes
# --------------------------------------------------------------------------- #


def test_merge_changes_keeps_first_old_last_new():
    stream = [
        PathChange(1, None, (1,)),
        PathChange(1, (1,), (2, 1)),
        PathChange(2, (3,), (4,)),
    ]
    merged = {c.tid: c for c in merge_changes(stream)}
    assert merged[1] == PathChange(1, None, (2, 1))
    assert merged[2] == PathChange(2, (3,), (4,))


def test_merge_changes_drops_noops():
    stream = [PathChange(1, (1,), (2,)), PathChange(1, (2,), (1,))]
    assert merge_changes(stream) == []


def test_merge_changes_insert_then_delete_cancels():
    stream = [PathChange(1, None, (1,)), PathChange(1, (1,), None)]
    assert merge_changes(stream) == []


def test_merge_changes_random_stream_keeps_endpoints():
    """Property: merged = first old_path, last new_path, one record per tid."""
    rng = random.Random(19)
    current: dict = {}
    first_old: dict = {}
    stream = []
    for _ in range(200):
        tid = rng.randrange(12)
        old = current.get(tid)
        new = (
            None
            if old is not None and rng.random() < 0.3
            else (rng.randrange(4), rng.randrange(4))
        )
        if old == new:
            continue
        if tid not in first_old:
            first_old[tid] = old
        stream.append(PathChange(tid, old, new))
        current[tid] = new
    merged = {c.tid: c for c in merge_changes(stream)}
    assert len(merged) <= len({c.tid for c in stream})
    for tid, change in merged.items():
        assert change.old_path == first_old[tid]
        assert change.new_path == current[tid]
    # Every tid missing from the merge collapsed to a no-op.
    for tid in {c.tid for c in stream} - set(merged):
        assert first_old[tid] == current[tid]


def test_merged_replay_matches_unmerged_replay():
    """Applying the merged batch to a counted signature is equivalent to
    replaying the raw stream change by change."""
    from repro.core.counted import CountedSignature

    rng = random.Random(11)
    fanout = 4
    # Path components are 1-based slot positions in [1, fanout].
    base_paths = {tid: (tid % 4 + 1, tid // 4 + 1) for tid in range(8)}
    current = dict(base_paths)
    stream = []
    for _ in range(150):
        tid = rng.randrange(12)
        old = current.get(tid)
        new = (
            None
            if old is not None and rng.random() < 0.3
            else (rng.randrange(1, 5), rng.randrange(1, 5))
        )
        if old == new:
            continue
        stream.append(PathChange(tid, old, new))
        current[tid] = new

    def replay(changes):
        counted = CountedSignature.from_paths(
            list(base_paths.values()), fanout
        )
        for change in changes:
            if change.old_path is not None:
                counted.remove_path(change.old_path)
            if change.new_path is not None:
                counted.add_path(change.new_path)
        return counted

    merged, raw = replay(merge_changes(stream)), replay(stream)
    assert merged == raw
    assert merged.to_signature() == raw.to_signature()


# --------------------------------------------------------------------------- #
# end-to-end drivers
# --------------------------------------------------------------------------- #


@pytest.fixture
def system(fresh_system):
    return fresh_system(
        n_tuples=300,
        n_boolean=2,
        cardinality=4,
        seed=42,
        rtree_method="insert",
    )


def test_insert_tuple_updates_affected_cells(system):
    tid, dirty = insert_tuple(
        system.relation, system.rtree, system.pcube, (1, 2), (0.5, 0.5)
    )
    assert tid == 300
    dirty_dims = {cell.dims for cell in dirty}
    assert ("A1",) in dirty_dims and ("A2",) in dirty_dims
    verify_all_signatures(system)


def test_insert_many_with_splits(system):
    rng = random.Random(7)
    for _ in range(80):
        insert_tuple(
            system.relation,
            system.rtree,
            system.pcube,
            (rng.randrange(4), rng.randrange(4)),
            (rng.random(), rng.random()),
        )
    verify_all_signatures(system)


def test_insert_batch_equivalent_to_tuple_at_a_time(fresh_system):
    a = fresh_system(n_tuples=200, seed=9, rtree_method="insert")
    b = fresh_system(n_tuples=200, seed=9, rtree_method="insert")
    rng = random.Random(3)
    rows = [
        ((rng.randrange(5), rng.randrange(5)), (rng.random(), rng.random()))
        for _ in range(40)
    ]
    for bool_row, pref_row in rows:
        insert_tuple(a.relation, a.rtree, a.pcube, bool_row, pref_row)
    insert_batch(b.relation, b.rtree, b.pcube, rows)
    verify_all_signatures(a)
    verify_all_signatures(b)
    # Same final signatures (identical insertion order => identical trees).
    for cuboid in a.pcube.cuboids:
        for cell in cuboid.group(a.relation):
            assert a.pcube.signature_of(cell) == b.pcube.signature_of(cell)


def test_delete_tuple(system):
    alive = set(system.relation.tids())
    rng = random.Random(1)
    for tid in rng.sample(sorted(alive), 60):
        dirty = delete_tuple(system.relation, system.rtree, system.pcube, tid)
        assert dirty  # the tuple's cells were touched
        alive.discard(tid)
    verify_all_signatures(system, alive)


def test_update_tuple_moves_in_preference_space(system):
    dirty = update_tuple(
        system.relation, system.rtree, system.pcube, 5, (0.99, 0.01)
    )
    assert system.relation.pref_point(5) == (0.99, 0.01)
    assert isinstance(dirty, set)
    verify_all_signatures(system)


def test_mixed_workload_stress(fresh_system):
    system = fresh_system(
        n_tuples=150, n_boolean=2, cardinality=3, seed=77, rtree_method="insert"
    )
    rng = random.Random(5)
    alive = set(system.relation.tids())
    next_row = 150
    for step in range(120):
        action = rng.random()
        if action < 0.5 or not alive:
            insert_tuple(
                system.relation,
                system.rtree,
                system.pcube,
                (rng.randrange(3), rng.randrange(3)),
                (rng.random(), rng.random()),
            )
            alive.add(next_row)
            next_row += 1
        elif action < 0.8:
            tid = rng.choice(sorted(alive))
            delete_tuple(system.relation, system.rtree, system.pcube, tid)
            alive.discard(tid)
        else:
            tid = rng.choice(sorted(alive))
            update_tuple(
                system.relation,
                system.rtree,
                system.pcube,
                tid,
                (rng.random(), rng.random()),
            )
    verify_all_signatures(system, alive)


def test_maintenance_with_rstar_reinsertion(fresh_system):
    system = fresh_system(
        n_tuples=200, seed=13, rtree_method="insert", split="rstar"
    )
    rng = random.Random(2)
    for _ in range(60):
        insert_tuple(
            system.relation,
            system.rtree,
            system.pcube,
            (rng.randrange(5), rng.randrange(5)),
            (rng.random(), rng.random()),
        )
    verify_all_signatures(system)


def test_queries_stay_correct_after_maintenance(fresh_system, rng):
    from repro.baselines.naive import naive_skyline
    from repro.data.workload import sample_predicate

    system = fresh_system(n_tuples=250, seed=31, rtree_method="insert")
    alive = set(system.relation.tids())
    for _ in range(50):
        insert_tuple(
            system.relation,
            system.rtree,
            system.pcube,
            (rng.randrange(5), rng.randrange(5)),
            (rng.random(), rng.random()),
        )
        alive.add(max(alive) + 1)
    for tid in rng.sample(sorted(alive), 40):
        delete_tuple(system.relation, system.rtree, system.pcube, tid)
        alive.discard(tid)
    predicate = sample_predicate(system.relation, 1, rng)
    result = system.engine.skyline(predicate)
    truth = set(
        naive_skyline(
            [
                (tid, system.relation.pref_point(tid))
                for tid in alive
                if predicate.matches(system.relation, tid)
            ]
        )
    )
    assert set(result.tids) == truth


# --------------------------------------------------------------------------- #
# ordering and tombstone contracts
# --------------------------------------------------------------------------- #


def test_update_writes_relation_before_rtree(system, monkeypatch):
    """Crash-safety ordering: the relation already holds the new preference
    row when the R-tree mutation starts, so recovery can trust the heap."""

    def boom(*args, **kwargs):
        raise RuntimeError("rtree down")

    monkeypatch.setattr(system.rtree, "update", boom)
    with pytest.raises(RuntimeError, match="rtree down"):
        update_tuple(
            system.relation, system.rtree, system.pcube, 3, (0.7, 0.3)
        )
    assert system.relation.pref_point(3) == (0.7, 0.3)


def test_update_refuses_tombstoned_tid(system):
    delete_tuple(system.relation, system.rtree, system.pcube, 4)
    with pytest.raises(KeyError):
        update_tuple(
            system.relation, system.rtree, system.pcube, 4, (0.1, 0.1)
        )


def test_delete_tombstones_the_relation_row(system):
    delete_tuple(system.relation, system.rtree, system.pcube, 10)
    assert not system.relation.is_live(10)
    assert 10 not in set(system.relation.live_tids())
    assert 10 not in list(system.relation.scan())
    # Row data is retained so late readers (and recovery) can still group it.
    assert len(system.relation) == 300
    assert system.relation.bool_row(10) is not None
