"""Unit tests for the maintenance write-ahead log."""

import pytest

from repro.core.wal import (
    CommittedOp,
    MaintenanceWAL,
    WalCorruptionError,
    record_crc,
)
from repro.query.stats import MaintenanceStats
from repro.rtree.rtree import PathChange
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def disk():
    return SimulatedDisk()


@pytest.fixture
def wal(disk):
    return MaintenanceWAL(disk)


def _run_op(wal, op_id=None, **payload):
    """One complete journalled operation (begin → changes → commit)."""
    payload = payload or {"base": 0, "rows": []}
    op_id = wal.begin("insert", **payload)
    wal.log_changes(op_id, [])
    wal.commit(op_id)
    return op_id


def _record_pages(disk, wal):
    return sorted(disk.pages(wal.record_tag), key=lambda p: p.page_id)


def test_fresh_wal_is_empty(wal):
    assert wal.is_empty()
    assert wal.pending() is None


def test_begin_journals_a_durable_intent(wal, disk):
    op_id = wal.begin("insert", base=3, rows=[(("a",), (0.1, 0.2))])
    assert not wal.is_empty()
    pending = wal.pending()
    assert pending.op_id == op_id
    assert pending.op == "insert"
    assert pending.payload == {"base": 3, "rows": [(("a",), (0.1, 0.2))]}
    assert pending.changes is None
    assert pending.stored_cells == []
    assert disk.page_count("wal:rec") == 1


def test_full_lifecycle_reconstructs_from_disk(wal):
    op_id = wal.begin("delete", tid=4)
    changes = [
        PathChange(4, (1, 2), None),
        PathChange(7, (2, 1), (1, 2)),
        PathChange(9, None, (2, 2)),
    ]
    wal.log_changes(op_id, changes)
    wal.log_cell_stored(op_id, "A=a1")
    wal.log_cell_stored(op_id, "B=b2")
    pending = wal.pending()
    assert pending.changes == changes
    assert pending.stored_cells == ["A=a1", "B=b2"]


def test_commit_retains_the_archive(wal, disk):
    """Commit appends a commit record instead of freeing the op's pages —
    the committed history is the archive point-in-time restore replays."""
    op_id = wal.begin("update", tid=1, pref_row=(0.5, 0.5))
    wal.log_changes(op_id, [PathChange(1, (1, 1), (2, 1))])
    wal.commit(op_id)
    assert wal.is_empty()
    assert wal.pending() is None
    # intent + changes + commit, all retained.
    assert disk.page_count("wal:rec") == 3
    ops, _ = MaintenanceWAL.read_committed(disk)
    assert [op.op for op in ops] == ["update"]
    assert ops[0].payload == {"tid": 1, "pref_row": (0.5, 0.5)}


def test_begin_refuses_while_an_op_is_pending(wal):
    wal.begin("insert", base=0, rows=[])
    with pytest.raises(RuntimeError, match="recover"):
        wal.begin("insert", base=0, rows=[])


def test_reopen_resumes_lsn_and_op_counters(disk):
    first = MaintenanceWAL(disk)
    op_id = first.begin("delete", tid=2)
    first.log_changes(op_id, [PathChange(2, (1,), None)])
    # A "reopened" WAL over the same disk sees the surviving records and
    # must not reuse their ids.
    second = MaintenanceWAL(disk)
    pending = second.pending()
    assert pending.op_id == op_id
    assert pending.changes == [PathChange(2, (1,), None)]
    second.commit(pending.op_id)
    assert second.begin("insert", base=0, rows=[]) > op_id


def test_reopen_refuses_new_work_while_an_op_is_pending(disk):
    first = MaintenanceWAL(disk)
    first.begin("delete", tid=2)
    second = MaintenanceWAL(disk)
    with pytest.raises(RuntimeError, match="recover"):
        second.begin("insert", base=0, rows=[])


def test_stats_count_records_and_commits(disk):
    stats = MaintenanceStats()
    wal = MaintenanceWAL(disk, stats=stats)
    op_id = wal.begin("insert", base=0, rows=[])
    wal.log_changes(op_id, [])
    wal.log_cell_stored(op_id, "A=a1")
    wal.commit(op_id)
    # intent + changes + cell + commit: the commit record counts too.
    assert stats.wal_records == 4
    assert stats.wal_commits == 1


def test_paths_survive_the_round_trip_as_tuples(wal):
    op_id = wal.begin("insert", base=0, rows=[])
    wal.log_changes(op_id, [PathChange(0, None, (1, 2, 3))])
    change = wal.pending().changes[0]
    assert change.old_path is None
    assert change.new_path == (1, 2, 3)
    assert isinstance(change.new_path, tuple)


# --------------------------------------------------------------------- #
# per-record CRCs
# --------------------------------------------------------------------- #


def test_record_crc_catches_in_place_tampering(wal, disk):
    """Page checksums fingerprint dict payloads by type only, so content
    tampered in place passes ``page.verify()``; the per-record CRC is what
    actually protects the record."""
    wal.begin("delete", tid=7)
    page = _record_pages(disk, wal)[-1]
    page.payload["payload"]["tid"] = 8  # flip a field in place
    page.verify()  # the page checksum is blind to this
    with pytest.raises(WalCorruptionError):
        wal.pending()


def test_torn_tail_is_truncated(disk):
    """A corrupt record above the last valid LSN is a torn write: repair
    truncates it and the WAL reopens clean."""
    wal = MaintenanceWAL(disk)
    _run_op(wal)
    op_id = wal.begin("delete", tid=1)
    tail = _record_pages(disk, wal)[-1]
    tail.payload.clear()
    tail.payload["garbage"] = True
    with pytest.raises(WalCorruptionError) as excinfo:
        wal.pending()
    assert excinfo.value.truncatable
    freed = wal.repair_tail()
    assert freed == 1
    assert not disk.exists(tail.page_id)
    # The torn intent is gone entirely: nothing pending, and new work may
    # start (with a fresh op id — LSNs/op ids never rewind past valid
    # records).
    assert wal.is_empty()
    assert wal.begin("insert", base=0, rows=[]) >= op_id


def test_interior_corruption_is_fail_stop(disk):
    """Damage *below* valid records cannot be a torn tail — committed
    history would be silently lost, so repair refuses."""
    wal = MaintenanceWAL(disk)
    _run_op(wal)
    _run_op(wal)
    first = _record_pages(disk, wal)[0]
    first.payload["kind"] = "garbage"  # still claims its (low) lsn
    with pytest.raises(WalCorruptionError) as excinfo:
        wal.repair_tail()
    assert not excinfo.value.truncatable
    assert first.page_id in excinfo.value.pages


def test_tail_truncation_is_counted(disk):
    stats = MaintenanceStats()
    wal = MaintenanceWAL(disk, stats=stats)
    wal.begin("delete", tid=0)
    _record_pages(disk, wal)[-1].payload["kind"] = "garbage"
    wal.repair_tail()
    assert stats.wal_tail_truncated == 1


# --------------------------------------------------------------------- #
# segmentation & the archive
# --------------------------------------------------------------------- #


def test_rotation_seals_segments_at_commit_boundaries(disk):
    wal = MaintenanceWAL(disk, segment_bytes=1)  # every commit rotates
    for tid in range(3):
        op_id = wal.begin("delete", tid=tid)
        wal.log_changes(op_id, [PathChange(tid, (1,), None)])
        wal.commit(op_id)
    catalog = wal.segments()
    sealed = [info for info in catalog if info.sealed]
    assert len(sealed) == 3
    # Segments partition the LSN sequence contiguously, and no operation
    # spans two segments (rotation only happens after a commit record).
    assert [info.segment for info in sealed] == [0, 1, 2]
    for earlier, later in zip(sealed, sealed[1:]):
        assert later.first_lsn == earlier.last_lsn + 1
    assert all(info.records == 3 for info in sealed)
    assert wal.stats.wal_segments_sealed == 3


def test_reopen_resumes_the_active_segment(disk):
    first = MaintenanceWAL(disk, segment_bytes=1)
    _run_op(first)
    _run_op(first)
    second = MaintenanceWAL(disk, segment_bytes=1)
    _run_op(second)
    segments = [info.segment for info in second.segments() if info.sealed]
    assert segments == [0, 1, 2]


def test_read_committed_skips_sealed_segments_below_the_watermark(disk):
    wal = MaintenanceWAL(disk, segment_bytes=1)
    for tid in range(4):
        op_id = wal.begin("delete", tid=tid)
        wal.commit(op_id)
    watermark = wal.segments()[1].last_lsn  # first two segments are history
    ops, metrics = MaintenanceWAL.read_committed(disk, after_lsn=watermark)
    assert [op.payload["tid"] for op in ops] == [2, 3]
    assert isinstance(ops[0], CommittedOp)
    assert metrics["segments_skipped"] == 2
    # Skipped segments cost one seal-page read each, zero record reads.
    assert metrics["record_reads"] == 2 * 2  # intent + commit, 2 segments
    assert metrics["seal_reads"] == 4


def test_read_committed_respects_upto_lsn(disk):
    wal = MaintenanceWAL(disk)
    lsn_after_two = None
    for tid in range(4):
        op_id = wal.begin("delete", tid=tid)
        wal.commit(op_id)
        if tid == 1:
            lsn_after_two = wal.last_commit_lsn
    ops, _ = MaintenanceWAL.read_committed(disk, upto_lsn=lsn_after_two)
    assert [op.payload["tid"] for op in ops] == [0, 1]


def test_read_committed_ignores_an_uncommitted_tail(disk):
    wal = MaintenanceWAL(disk)
    _run_op(wal)
    wal.begin("delete", tid=9)  # never commits
    ops, metrics = MaintenanceWAL.read_committed(disk)
    assert len(ops) == 1
    assert metrics["damaged_ignored"] == 0


def test_read_committed_fails_on_a_missing_intent(disk):
    wal = MaintenanceWAL(disk)
    op_id = wal.begin("delete", tid=3)
    wal.commit(op_id)
    intent = _record_pages(disk, wal)[0]
    intent.payload["kind"] = "garbage"
    with pytest.raises(WalCorruptionError):
        MaintenanceWAL.read_committed(disk)


def test_prune_drops_only_whole_sealed_prefixes(disk):
    wal = MaintenanceWAL(disk, segment_bytes=1)
    for tid in range(3):
        op_id = wal.begin("delete", tid=tid)
        wal.commit(op_id)
    catalog = wal.segments()
    freed = wal.prune_upto(catalog[0].last_lsn)
    assert freed == catalog[0].records
    remaining = [info.segment for info in wal.segments()]
    assert remaining == [1, 2]
    # Pruning below the oldest surviving segment is a no-op.
    assert wal.prune_upto(catalog[0].last_lsn) == 0
    # The pruned WAL still reopens and replays cleanly.
    ops, _ = MaintenanceWAL.read_committed(disk)
    assert [op.payload["tid"] for op in ops] == [1, 2]


def test_seal_crc_guards_the_segment_directory(disk):
    wal = MaintenanceWAL(disk, segment_bytes=1)
    _run_op(wal)
    seal = next(iter(disk.pages(wal.seal_tag)))
    assert seal.payload["crc"] == record_crc(seal.payload)
    seal.payload["last_lsn"] = 999  # tamper: crc now mismatches
    # A bogus seal is ignored rather than trusted for skipping.
    _, metrics = MaintenanceWAL.read_committed(disk, after_lsn=10**6)
    assert metrics["segments_skipped"] == 0
    # repair_tail rebuilds the damaged seal from the surviving records.
    wal2 = MaintenanceWAL(disk, segment_bytes=1)
    wal2.repair_tail()
    seals = list(disk.pages(wal2.seal_tag))
    assert len(seals) == 1
    assert seals[0].payload["crc"] == record_crc(seals[0].payload)
    assert seals[0].payload["last_lsn"] != 999
