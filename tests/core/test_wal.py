"""Unit tests for the maintenance write-ahead log."""

import pytest

from repro.core.wal import MaintenanceWAL
from repro.query.stats import MaintenanceStats
from repro.rtree.rtree import PathChange
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def disk():
    return SimulatedDisk()


@pytest.fixture
def wal(disk):
    return MaintenanceWAL(disk)


def test_fresh_wal_is_empty(wal):
    assert wal.is_empty()
    assert wal.pending() is None


def test_begin_journals_a_durable_intent(wal, disk):
    op_id = wal.begin("insert", base=3, rows=[(("a",), (0.1, 0.2))])
    assert not wal.is_empty()
    pending = wal.pending()
    assert pending.op_id == op_id
    assert pending.op == "insert"
    assert pending.payload == {"base": 3, "rows": [(("a",), (0.1, 0.2))]}
    assert pending.changes is None
    assert pending.stored_cells == []
    assert disk.page_count("wal:rec") == 1


def test_full_lifecycle_reconstructs_from_disk(wal):
    op_id = wal.begin("delete", tid=4)
    changes = [
        PathChange(4, (1, 2), None),
        PathChange(7, (2, 1), (1, 2)),
        PathChange(9, None, (2, 2)),
    ]
    wal.log_changes(op_id, changes)
    wal.log_cell_stored(op_id, "A=a1")
    wal.log_cell_stored(op_id, "B=b2")
    pending = wal.pending()
    assert pending.changes == changes
    assert pending.stored_cells == ["A=a1", "B=b2"]


def test_commit_truncates_atomically(wal, disk):
    op_id = wal.begin("update", tid=1, pref_row=(0.5, 0.5))
    wal.log_changes(op_id, [PathChange(1, (1, 1), (2, 1))])
    wal.commit(op_id)
    assert wal.is_empty()
    assert wal.pending() is None
    assert disk.page_count("wal:rec") == 0


def test_begin_refuses_while_an_op_is_pending(wal):
    wal.begin("insert", base=0, rows=[])
    with pytest.raises(RuntimeError, match="recover"):
        wal.begin("insert", base=0, rows=[])


def test_reopen_resumes_lsn_and_op_counters(disk):
    first = MaintenanceWAL(disk)
    op_id = first.begin("delete", tid=2)
    first.log_changes(op_id, [PathChange(2, (1,), None)])
    # A "reopened" WAL over the same disk sees the surviving records and
    # must not reuse their ids.
    second = MaintenanceWAL(disk)
    pending = second.pending()
    assert pending.op_id == op_id
    assert pending.changes == [PathChange(2, (1,), None)]
    second.commit(pending.op_id)
    assert second.begin("insert", base=0, rows=[]) > op_id


def test_stats_count_records_and_commits(disk):
    stats = MaintenanceStats()
    wal = MaintenanceWAL(disk, stats=stats)
    op_id = wal.begin("insert", base=0, rows=[])
    wal.log_changes(op_id, [])
    wal.log_cell_stored(op_id, "A=a1")
    wal.commit(op_id)
    assert stats.wal_records == 3
    assert stats.wal_commits == 1


def test_paths_survive_the_round_trip_as_tuples(wal):
    op_id = wal.begin("insert", base=0, rows=[])
    wal.log_changes(op_id, [PathChange(0, None, (1, 2, 3))])
    change = wal.pending().changes[0]
    assert change.old_path is None
    assert change.new_path == (1, 2, 3)
    assert isinstance(change.new_path, tuple)
