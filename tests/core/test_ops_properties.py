"""Property tests for the signature algebra (``repro.core.ops``).

Hypothesis builds random relations, lets ``build_system`` grow a real
R-tree over them (tiny fanout, so the trees are deep and split-heavy), and
checks the algebraic laws the assembly layer silently relies on:

* union and intersection are commutative, associative and idempotent on
  signatures generated from data;
* online assembly is exact — intersecting the atomic cell signatures of a
  conjunction equals the signature generated directly from the merged
  cell's tuple group (the paper's Fig. 3 claim, fuzzed);
* the lazy AND is conservative at internal nodes but exact on full tuple
  paths.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.generation import generate_cuboid_signatures
from repro.core.ops import (
    LazyIntersection,
    intersect,
    intersect_all,
    union,
    union_all,
)
from repro.core.signature import Signature
from repro.cube.cuboid import Cell, Cuboid
from repro.cube.relation import Relation
from repro.cube.schema import Schema
from repro.system import build_system

ALGEBRA_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: (A, B, X, Y) rows over small domains: few distinct cells, many shared
#: tuples per cell pair, deep fanout-4 trees.
rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=40,
)


def grown_tree(rows):
    """Random relation → real insert-grown R-tree → (relation, paths)."""
    schema = Schema(("A", "B"), ("X", "Y"))
    relation = Relation(
        schema,
        [(a, b) for a, b, _, _ in rows],
        [(x / 7.0, y / 7.0) for _, _, x, y in rows],
    )
    system = build_system(relation, fanout=4, with_indexes=False)
    return relation, system.rtree.all_paths()


def atomic_signatures(relation, paths, dim: str):
    return generate_cuboid_signatures(relation, Cuboid((dim,)), paths, 4)


@ALGEBRA_SETTINGS
@given(rows=rows_strategy)
def test_union_laws(rows):
    relation, paths = grown_tree(rows)
    sigs = list(atomic_signatures(relation, paths, "A").values()) + list(
        atomic_signatures(relation, paths, "B").values()
    )
    for s in sigs:
        assert union(s, s) == s, "union not idempotent"
    for s1 in sigs:
        for s2 in sigs:
            assert union(s1, s2) == union(s2, s1), "union not commutative"
    if len(sigs) >= 3:
        s1, s2, s3 = sigs[0], sigs[1], sigs[2]
        assert union(union(s1, s2), s3) == union(s1, union(s2, s3))
    # The union of a cuboid's cells is the apex signature: every tuple.
    apex = Signature.from_paths(paths.values(), 4)
    assert union_all(list(atomic_signatures(relation, paths, "A").values())) == apex


@ALGEBRA_SETTINGS
@given(rows=rows_strategy)
def test_intersection_laws(rows):
    relation, paths = grown_tree(rows)
    sigs = list(atomic_signatures(relation, paths, "A").values()) + list(
        atomic_signatures(relation, paths, "B").values()
    )
    for s in sigs:
        assert intersect(s, s) == s, "intersection not idempotent"
    for s1 in sigs:
        for s2 in sigs:
            assert intersect(s1, s2) == intersect(s2, s1), (
                "intersection not commutative"
            )
    if len(sigs) >= 3:
        s1, s2, s3 = sigs[0], sigs[1], sigs[2]
        assert intersect(intersect(s1, s2), s3) == intersect(
            s1, intersect(s2, s3)
        )
        assert intersect_all([s1, s2, s3]) == intersect(
            intersect(s1, s2), s3
        )


@ALGEBRA_SETTINGS
@given(rows=rows_strategy)
def test_assembly_equals_direct_generation(rows):
    """intersect(sig(A=a), sig(B=b)) ≡ the signature generated from the
    merged cell (A=a, B=b) — online assembly is exact, not just safe."""
    relation, paths = grown_tree(rows)
    by_a = atomic_signatures(relation, paths, "A")
    by_b = atomic_signatures(relation, paths, "B")
    merged = generate_cuboid_signatures(
        relation, Cuboid(("A", "B")), paths, 4
    )
    for a_cell, sig_a in by_a.items():
        for b_cell, sig_b in by_b.items():
            assembled = intersect(sig_a, sig_b)
            cell = Cell(("A", "B"), (a_cell.values[0], b_cell.values[0]))
            direct = merged.get(cell)
            if direct is None:
                assert not assembled, (
                    f"assembled {cell} non-empty but no tuple has it"
                )
            else:
                assert assembled == direct


@ALGEBRA_SETTINGS
@given(rows=rows_strategy)
def test_lazy_intersection_exact_on_paths(rows):
    """The lazy AND may over-report internal nodes, never full paths."""
    relation, paths = grown_tree(rows)
    by_a = atomic_signatures(relation, paths, "A")
    by_b = atomic_signatures(relation, paths, "B")
    for sig_a in by_a.values():
        for sig_b in by_b.values():
            exact = intersect(sig_a, sig_b)
            lazy = LazyIntersection([sig_a, sig_b])
            for path in paths.values():
                assert lazy.check_path(path) == exact.check_path(path)
            # Conservatism: every bit exact keeps, lazy also reports.
            for sid in exact.node_sids():
                bits = exact.node(sid)
                for position in bits.positions():
                    assert lazy.check_bit(sid, position + 1)
