"""PCube: build, readers, assembly fallbacks, size accounting."""

import pytest

from repro.core.pcube import EmptyReader, PCube, SignatureAdapter
from repro.core.signature import Signature
from repro.cube.cuboid import Cell, Cuboid
from repro.storage.counters import IOCounters


@pytest.fixture
def system(fresh_system):
    return fresh_system(n_tuples=400, n_boolean=2, cardinality=4, seed=8)


def expected_signature(system, cell):
    paths = system.rtree.all_paths()
    return Signature.from_paths(
        [
            paths[tid]
            for tid in system.relation.tids()
            if cell.matches(system.relation, tid)
        ],
        system.rtree.max_entries,
    )


def test_build_materialises_atomic_cuboids(system):
    pcube = system.pcube
    assert [c.dims for c in pcube.cuboids] == [("A1",), ("A2",)]
    for dim in ("A1", "A2"):
        for value in range(4):
            cell = Cell((dim,), (value,))
            assert pcube.materialised_cell(cell)
            assert pcube.signature_of(cell) == expected_signature(system, cell)


def test_missing_cell_not_materialised(system):
    assert not system.pcube.materialised_cell(Cell(("A1",), (99,)))
    assert system.pcube.signature_of(Cell(("A1",), (99,))).n_nodes() == 0


def test_reader_for_single_cell(system):
    cell = Cell(("A1",), (1,))
    counters = IOCounters()
    reader = system.pcube.reader_for_cells([cell], counters=counters)
    signature = expected_signature(system, cell)
    for path in signature.tuple_paths():
        assert reader.check_path(path)


def test_reader_for_conjunction_lazy(system):
    cells = [Cell(("A1",), (1,)), Cell(("A2",), (2,))]
    reader = system.pcube.reader_for_cells(cells)
    conjunction = Cell(("A1", "A2"), (1, 2))
    paths = system.rtree.all_paths()
    for tid in system.relation.tids():
        expected = conjunction.matches(system.relation, tid)
        assert reader.check_path(paths[tid]) == expected


def test_reader_for_conjunction_eager_equals_recursive_intersection(system):
    cells = [Cell(("A1",), (0,)), Cell(("A2",), (3,))]
    reader = system.pcube.reader_for_cells(cells, eager=True)
    assert isinstance(reader, SignatureAdapter)
    from repro.core.ops import intersect

    expected = intersect(
        expected_signature(system, cells[0]),
        expected_signature(system, cells[1]),
    )
    assert reader.signature == expected


def test_reader_for_multidim_cell_falls_back_to_atoms(system):
    cell = Cell(("A1", "A2"), (1, 2))
    assert not system.pcube.materialised_cell(cell)
    reader = system.pcube.reader_for_cells([cell])
    paths = system.rtree.all_paths()
    for tid in system.relation.tids():
        assert reader.check_path(paths[tid]) == cell.matches(
            system.relation, tid
        )


def test_reader_for_dead_value_is_empty_reader(system):
    reader = system.pcube.reader_for_cells([Cell(("A1",), (99,))])
    assert isinstance(reader, EmptyReader)
    assert not reader.check_path((1,))
    assert not reader.check_entry((), 1)


def test_reader_requires_cells(system):
    with pytest.raises(ValueError):
        system.pcube.reader_for_cells([])


def test_multidim_cuboid_materialisation(fresh_system):
    system = fresh_system(n_tuples=200, n_boolean=2, cardinality=3, seed=5)
    relation, rtree = system.relation, system.rtree
    cuboids = [Cuboid(("A1",)), Cuboid(("A2",)), Cuboid(("A1", "A2"))]
    pcube = PCube.build(relation, rtree, cuboids=cuboids, tag="pcube2")
    cell = Cell(("A1", "A2"), (1, 1))
    if pcube.materialised_cell(cell):
        paths = rtree.all_paths()
        expected = Signature.from_paths(
            [
                paths[tid]
                for tid in relation.tids()
                if cell.matches(relation, tid)
            ],
            rtree.max_entries,
        )
        assert pcube.signature_of(cell) == expected


def test_size_accounting(system):
    assert system.pcube.size_bytes() > 0
    assert system.pcube.n_cells() == 8  # 2 dims x 4 values


def test_recompute_cell(system):
    cell = Cell(("A1",), (2,))
    recomputed = system.pcube.recompute_cell(cell)
    assert recomputed == expected_signature(system, cell)


def test_apply_changes_requires_maintainable(fresh_system):
    system = fresh_system(n_tuples=100, seed=3, maintainable=False)
    with pytest.raises(RuntimeError):
        system.pcube.apply_changes([])


def test_repr(system):
    assert "PCube" in repr(system.pcube)
