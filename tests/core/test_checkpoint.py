"""Online fuzzy checkpoints + point-in-time restore (core/checkpoint.py).

The contract under test: ``create()`` captures a committed state without
disturbing readers, the manifest page is the atomic commit point (orphan
row chunks are invisible and reclaimable), and ``restore_system`` rebuilds
a byte-identical system from the newest usable checkpoint plus the
committed WAL window — falling back to older checkpoints when a chunk
fails verification.
"""

import pytest

from repro.backup import answer_fingerprint
from repro.core.checkpoint import (
    CheckpointError,
    CheckpointManager,
    catalog_checkpoints,
    restore_system,
)
from repro.data.synthetic import SyntheticConfig, generate_relation
from repro.query.session import QuerySession
from repro.storage.disk import SimulatedDisk
from repro.storage.errors import CorruptPageError
from repro.storage.faults import (
    FaultPlan,
    FaultRule,
    FaultyDisk,
    SimulatedCrash,
)
from repro.system import build_system

CONFIG = dict(
    n_tuples=113, n_boolean=2, cardinality=3, n_preference=2, seed=13
)


def make_system(disk=None, **kwargs):
    disk = disk if disk is not None else SimulatedDisk()
    relation = generate_relation(SyntheticConfig(**CONFIG), disk=disk)
    kwargs.setdefault("fanout", 5)
    kwargs.setdefault("wal_segment_bytes", 512)
    return build_system(relation, **kwargs)


def mutate(system, seed_offset=0):
    """A small deterministic maintenance batch; returns its commit LSN."""
    system.insert(system.relation.bool_row(0), (0.41 + seed_offset / 100, 0.2))
    system.delete(5 + seed_offset)
    system.update(11, (0.9, 0.05 + seed_offset / 100))
    return system.wal.last_commit_lsn


def test_create_and_catalog():
    system = make_system()
    manager = CheckpointManager(system)
    first = manager.create()
    mutate(system)
    second = manager.create()
    assert [info.checkpoint_id for info in manager.catalog()] == [0, 1]
    assert first.watermark_lsn == 0
    assert second.watermark_lsn > first.watermark_lsn
    assert second.n_rows == len(system.relation)
    assert second.n_tombstones == 1
    # The catalog is readable from the bare disk (no live system).
    assert [
        info.checkpoint_id for info in catalog_checkpoints(system.disk)
    ] == [0, 1]


def test_create_refuses_without_wal():
    system = make_system(with_wal=False)
    with pytest.raises(CheckpointError, match="without"):
        CheckpointManager(system).create()


def test_create_refuses_a_pending_wal():
    disk = FaultyDisk(SimulatedDisk())
    system = make_system(disk=disk)
    disk.plan = FaultPlan(
        [FaultRule(kind="crash", op="write", tag="rtree", count=1)]
    )
    with pytest.raises(SimulatedCrash):
        mutate(system)
    disk.plan = FaultPlan()
    with pytest.raises(CheckpointError, match="uncommitted"):
        CheckpointManager(system).create()
    system.recover()
    CheckpointManager(system).create()  # clean again


def test_checkpoint_is_online_under_epochs():
    """Readers pinned before the checkpoint stay untouched by it."""
    system = make_system()
    system.enable_epochs()
    pinned = system.pin_snapshot()
    before = QuerySession.for_snapshot(pinned).skyline()
    info = CheckpointManager(system).create()
    assert info.epoch == pinned.epoch
    after = QuerySession.for_snapshot(pinned).skyline()
    assert before.tids == after.tids
    system.unpin_snapshot(pinned)


def test_restore_latest_matches_the_live_system():
    system = make_system()
    manager = CheckpointManager(system)
    manager.create()
    mutate(system)
    manager.create()
    mutate(system, seed_offset=1)  # a post-checkpoint tail to replay
    result = restore_system(system.disk)
    assert result.checkpoint.checkpoint_id == 1
    assert result.ops_replayed == 3
    assert result.fallbacks == 0
    assert answer_fingerprint(result.system) == answer_fingerprint(system)


def test_restore_to_lsn_reproduces_history():
    system = make_system()
    manager = CheckpointManager(system)
    manager.create()
    system.insert(system.relation.bool_row(0), (0.41, 0.2))
    lsn_mid = system.wal.last_commit_lsn
    system.delete(5)
    system.update(11, (0.9, 0.05))
    manager.create()
    mutate(system, seed_offset=1)

    reference = make_system()
    reference.insert(reference.relation.bool_row(0), (0.41, 0.2))
    result = restore_system(system.disk, to_lsn=lsn_mid)
    # The mid-history target predates checkpoint 1's watermark, so the
    # restore must come from checkpoint 0 and replay forward to lsn_mid.
    assert result.checkpoint.checkpoint_id == 0
    assert result.ops_replayed == 1
    assert answer_fingerprint(result.system) == answer_fingerprint(reference)


def test_restore_falls_back_on_a_corrupted_row_chunk():
    system = make_system()
    manager = CheckpointManager(system)
    manager.create()
    mutate(system)
    newest = manager.create()
    page = system.disk.peek(newest.row_pages[0])
    page.payload["bools"] = [(9, 9)] * len(page.payload["bools"])
    result = restore_system(system.disk)
    assert result.checkpoint.checkpoint_id == 0
    assert result.fallbacks == 1
    assert result.ops_replayed == 3  # the full history, from the base image
    assert answer_fingerprint(result.system) == answer_fingerprint(system)


def test_restore_without_any_checkpoint_raises():
    system = make_system()
    with pytest.raises(CheckpointError, match="no usable checkpoint"):
        restore_system(system.disk)


def test_orphan_row_chunks_are_invisible_and_reclaimable():
    """A crash between chunk writes and the manifest leaves no catalog
    entry; ``gc_orphans`` frees the residue."""
    disk = FaultyDisk(SimulatedDisk())
    system = make_system(disk=disk)
    manager = CheckpointManager(system)
    manager.create()
    mutate(system)
    disk.plan = FaultPlan(
        [
            FaultRule(
                kind="crash", op="allocate", tag="ckpt", after=1, count=1
            )
        ]
    )
    with pytest.raises(SimulatedCrash):
        manager.create()
    disk.plan = FaultPlan()
    assert [info.checkpoint_id for info in manager.catalog()] == [0]
    freed = manager.gc_orphans()
    assert freed >= 1
    assert disk.page_count("ckpt:c1") == 0
    # The surviving checkpoint still restores.
    result = restore_system(system.disk)
    assert result.checkpoint.checkpoint_id == 0
    assert answer_fingerprint(result.system) == answer_fingerprint(system)


def test_prune_keeps_the_newest_checkpoints():
    system = make_system()
    manager = CheckpointManager(system)
    for offset in range(3):
        manager.create()
        mutate(system, seed_offset=offset)
    manager.create()
    assert len(manager.catalog()) == 4
    freed = manager.prune(keep=2)
    assert freed >= 2
    assert [info.checkpoint_id for info in manager.catalog()] == [2, 3]
    result = restore_system(system.disk)
    assert result.checkpoint.checkpoint_id == 3
    assert answer_fingerprint(result.system) == answer_fingerprint(system)
    with pytest.raises(ValueError):
        manager.prune(keep=0)


def test_restore_skips_checkpoints_past_the_target_lsn():
    system = make_system()
    manager = CheckpointManager(system)
    manager.create()
    mutate(system)
    manager.create()
    # A target before any commit: only the base checkpoint qualifies.
    result = restore_system(system.disk, to_lsn=0)
    assert result.checkpoint.checkpoint_id == 0
    assert result.ops_replayed == 0
    reference = make_system()
    assert answer_fingerprint(result.system) == answer_fingerprint(reference)
