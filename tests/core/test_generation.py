"""Tuple-oriented generation: the recursive sort equals bit insertion."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generation import (
    generate_cuboid_signatures,
    signature_by_recursive_sort,
)
from repro.core.signature import Signature
from repro.cube.cuboid import Cell, Cuboid
from repro.cube.relation import Relation
from repro.cube.schema import Schema


def test_recursive_sort_empty():
    signature = signature_by_recursive_sort([], 4)
    assert signature.n_nodes() == 0


def test_recursive_sort_single_path():
    signature = signature_by_recursive_sort([(2, 1, 3)], 4)
    assert signature == Signature.from_paths([(2, 1, 3)], 4)


def test_recursive_sort_validates_components():
    with pytest.raises(ValueError):
        signature_by_recursive_sort([(9,)], 4)


def test_recursive_sort_shared_prefixes():
    paths = [(1, 1, 1), (1, 1, 2), (1, 2, 1)]
    signature = signature_by_recursive_sort(paths, 2)
    assert signature == Signature.from_paths(paths, 2)
    assert set(signature.tuple_paths()) == set(paths)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=2, max_value=10).flatmap(
        lambda m: st.tuples(
            st.just(m),
            st.lists(
                st.lists(
                    st.integers(min_value=1, max_value=m),
                    min_size=1,
                    max_size=5,
                ).map(tuple),
                max_size=40,
            ),
        )
    )
)
def test_recursive_sort_equals_from_paths(data):
    """The paper's algorithm and plain insertion agree on any input."""
    fanout, paths = data
    assert signature_by_recursive_sort(paths, fanout) == Signature.from_paths(
        paths, fanout
    )


@pytest.fixture
def relation_and_paths():
    schema = Schema(("A", "B"), ("X",))
    rng = random.Random(4)
    bool_rows = [(rng.randrange(3), rng.randrange(2)) for _ in range(60)]
    pref_rows = [(rng.random(),) for _ in range(60)]
    relation = Relation(schema, bool_rows, pref_rows)
    paths = {
        tid: (rng.randrange(1, 5), rng.randrange(1, 5), rng.randrange(1, 5))
        for tid in range(60)
    }
    return relation, paths


def test_generate_cuboid_signatures_covers_all_cells(relation_and_paths):
    relation, paths = relation_and_paths
    cuboid = Cuboid(("A",))
    signatures = generate_cuboid_signatures(relation, cuboid, paths, fanout=4)
    values = {relation.bool_value(tid, "A") for tid in relation.tids()}
    assert {cell.values[0] for cell in signatures} == values
    for cell, signature in signatures.items():
        member_paths = {
            paths[tid] for tid in relation.tids() if cell.matches(relation, tid)
        }
        assert set(signature.tuple_paths()) == member_paths


def test_generate_two_dim_cuboid(relation_and_paths):
    relation, paths = relation_and_paths
    cuboid = Cuboid(("A", "B"))
    signatures = generate_cuboid_signatures(relation, cuboid, paths, fanout=4)
    total = sum(
        len(list(signature.tuple_paths())) for signature in signatures.values()
    )
    # Tuples with identical paths within a cell collapse; with random
    # 3-component paths over [1,4]³ = 64 slots and ≤ 60 tuples, collisions
    # are possible but cells partition the relation.
    assert total <= 60
    cells = set(signatures)
    for tid in relation.tids():
        assert cuboid.cell_for(relation, tid) in cells
