"""Materialised-cover selection for multi-dimensional predicates."""

import random

import pytest

from repro.baselines.naive import naive_skyline
from repro.core.pcube import EmptyReader, PCube
from repro.cube.cuboid import Cell, Cuboid
from repro.data.synthetic import SyntheticConfig, generate_relation
from repro.query.predicates import BooleanPredicate
from repro.query.skyline import skyline_signature
from repro.rtree.bulk import bulk_load


@pytest.fixture(scope="module")
def rich_system():
    """A P-Cube that materialises atomic cuboids plus (A1, A2)."""
    config = SyntheticConfig(
        n_tuples=600, n_boolean=3, cardinality=4, n_preference=2, seed=61
    )
    relation = generate_relation(config)
    rtree = bulk_load(
        list(relation.pref_points()), dims=2, max_entries=8, disk=relation.disk
    )
    cuboids = [
        Cuboid(("A1",)),
        Cuboid(("A2",)),
        Cuboid(("A3",)),
        Cuboid(("A1", "A2")),
    ]
    pcube = PCube.build(relation, rtree, cuboids=cuboids)
    return relation, rtree, pcube


def test_cover_prefers_widest_cuboid(rich_system):
    relation, rtree, pcube = rich_system
    cover = pcube.cover_for_dims({"A1": 1, "A2": 2})
    assert cover == [Cell(("A1", "A2"), (1, 2))]


def test_cover_mixes_widths(rich_system):
    relation, rtree, pcube = rich_system
    cover = pcube.cover_for_dims({"A1": 1, "A2": 2, "A3": 3})
    assert Cell(("A1", "A2"), (1, 2)) in cover
    assert Cell(("A3",), (3,)) in cover
    assert len(cover) == 2


def test_cover_atomic_fallback(rich_system):
    relation, rtree, pcube = rich_system
    cover = pcube.cover_for_dims({"A3": 0})
    assert cover == [Cell(("A3",), (0,))]


def test_cover_detects_empty_combination(rich_system):
    relation, rtree, pcube = rich_system
    # Find a (A1, A2) pair that never co-occurs (cardinality 4 over 600
    # rows makes all 16 pairs likely live; use an out-of-domain value).
    assert pcube.cover_for_dims({"A1": 99, "A2": 0}) is None
    reader = pcube.reader_for_predicate({"A1": 99, "A2": 0})
    assert isinstance(reader, EmptyReader)


def test_cover_missing_cuboid_rejected():
    config = SyntheticConfig(
        n_tuples=100, n_boolean=2, cardinality=3, n_preference=2, seed=3
    )
    relation = generate_relation(config)
    rtree = bulk_load(
        list(relation.pref_points()), dims=2, max_entries=8, disk=relation.disk
    )
    pcube = PCube.build(relation, rtree, cuboids=[Cuboid(("A1",))])
    with pytest.raises(ValueError):
        pcube.cover_for_dims({"A2": 1})


def test_queries_agree_across_materialisations(rich_system):
    """The cover changes I/O, never answers."""
    relation, rtree, pcube = rich_system
    rng = random.Random(5)
    for _ in range(5):
        anchor = rng.randrange(len(relation))
        predicate = BooleanPredicate(
            {
                "A1": relation.bool_value(anchor, "A1"),
                "A2": relation.bool_value(anchor, "A2"),
            }
        )
        tids, stats, _ = skyline_signature(relation, rtree, pcube, predicate)
        expected = set(
            naive_skyline(
                [
                    (tid, relation.pref_point(tid))
                    for tid in relation.tids()
                    if predicate.matches(relation, tid)
                ]
            )
        )
        assert set(tids) == expected


def test_wider_cover_prunes_at_least_as_well(rich_system):
    """One (A1,A2) signature vs the lazy AND of two atomic ones: the
    materialised conjunction can only reduce block reads."""
    relation, rtree, pcube = rich_system
    atomic_only = PCube.build(
        relation,
        rtree,
        cuboids=[Cuboid(("A1",)), Cuboid(("A2",)), Cuboid(("A3",))],
        tag="pcube-atomic",
    )
    rng = random.Random(6)
    for _ in range(5):
        anchor = rng.randrange(len(relation))
        predicate = BooleanPredicate(
            {
                "A1": relation.bool_value(anchor, "A1"),
                "A2": relation.bool_value(anchor, "A2"),
            }
        )
        _, rich_stats, _ = skyline_signature(relation, rtree, pcube, predicate)
        _, atomic_stats, _ = skyline_signature(
            relation, rtree, atomic_only, predicate
        )
        assert rich_stats.sblock <= atomic_stats.sblock


def test_maintenance_covers_multidim_cuboids(rich_system):
    from repro.core.maintenance import insert_tuple
    from repro.core.signature import Signature

    relation, rtree, pcube = rich_system
    rng = random.Random(7)
    for _ in range(20):
        insert_tuple(
            relation,
            rtree,
            pcube,
            (rng.randrange(4), rng.randrange(4), rng.randrange(4)),
            (rng.random(), rng.random()),
        )
    paths = rtree.all_paths()
    cuboid = Cuboid(("A1", "A2"))
    for cell, tids in cuboid.group(relation).items():
        expected = Signature.from_paths(
            [paths[tid] for tid in tids], rtree.max_entries
        )
        assert pcube.signature_of(cell) == expected
