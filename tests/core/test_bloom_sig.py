"""Bloom signatures: conservative pruning, exact query results."""

import pytest

from repro.baselines.naive import naive_skyline
from repro.core.bloom_sig import BloomConjunction, BloomSignature
from repro.core.signature import Signature
from repro.data.workload import sample_predicate
from repro.query.algorithm1 import SkylineStrategy, run_algorithm1
from repro.query.stats import QueryStats

FANOUT = 4


def test_no_false_negatives_on_set_bits():
    paths = [(1, 2, 3), (2, 1, 1), (4, 4, 4)]
    signature = Signature.from_paths(paths, FANOUT)
    bloom = BloomSignature.from_signature(signature)
    for path in paths:
        assert bloom.check_path(path)
        for i in range(1, len(path)):
            assert bloom.check_path(path[:i])


def test_empty_signature_rejects_everything():
    bloom = BloomSignature.from_signature(Signature(FANOUT))
    assert not bloom.check_path(())
    assert not bloom.check_path((1, 1))
    assert not bloom.check_entry((), 1)


def test_nonempty_root_check():
    bloom = BloomSignature.from_signature(
        Signature.from_paths([(1, 1)], FANOUT)
    )
    assert bloom.check_path(())


def test_size_much_smaller_than_exact(small_system):
    from repro.cube.cuboid import Cell

    cell = Cell(("A1",), (0,))
    signature = small_system.pcube.signature_of(cell)
    bloom = BloomSignature.from_signature(signature, fp_rate=0.05)
    from repro.core.partial import decompose

    exact_bytes = sum(
        p.size_bytes
        for p in decompose(signature, small_system.disk.page_size)
    )
    assert bloom.size_bytes() < exact_bytes


def test_conjunction_requires_signatures():
    with pytest.raises(ValueError):
        BloomConjunction([])


def test_query_results_exact_despite_false_positives(small_system, rng):
    """Dropping the Bloom reader into Algorithm 1 must keep skyline answers
    exact: false positives cost block reads, never wrong results."""
    relation = small_system.relation
    for _ in range(3):
        predicate = sample_predicate(relation, 2, rng)
        blooms = [
            BloomSignature.from_signature(
                small_system.pcube.signature_of(cell), fp_rate=0.05
            )
            for cell in predicate.atomic_cells()
        ]
        reader = BloomConjunction(blooms)
        stats = QueryStats()
        state = run_algorithm1(
            small_system.rtree,
            SkylineStrategy(small_system.rtree.dims),
            stats,
            reader=reader,
            verifier=lambda tid: predicate.matches(relation, tid),
        )
        expected = set(
            naive_skyline(
                [
                    (tid, relation.pref_point(tid))
                    for tid in relation.tids()
                    if predicate.matches(relation, tid)
                ]
            )
        )
        assert {e.tid for e in state.results} == expected


def test_bloom_reads_at_least_as_many_blocks_as_exact(small_system, rng):
    predicate = sample_predicate(small_system.relation, 1, rng)
    (cell,) = predicate.atomic_cells()
    signature = small_system.pcube.signature_of(cell)

    from repro.core.pcube import SignatureAdapter

    exact_stats = QueryStats()
    run_algorithm1(
        small_system.rtree,
        SkylineStrategy(2),
        exact_stats,
        reader=SignatureAdapter(signature),
    )
    bloom_stats = QueryStats()
    run_algorithm1(
        small_system.rtree,
        SkylineStrategy(2),
        bloom_stats,
        reader=BloomSignature.from_signature(signature, fp_rate=0.2),
        verifier=lambda tid: predicate.matches(small_system.relation, tid),
    )
    assert bloom_stats.nodes_expanded >= exact_stats.nodes_expanded
