"""Decomposition into page-sized partials and the retrieval protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partial import (
    PartialSignature,
    decompose,
    reassemble,
    retrieval_refs,
)
from repro.core.sid import ancestor_sids, sid_of_path
from repro.core.signature import Signature

FANOUT = 4

path_sets = st.sets(
    st.lists(
        st.integers(min_value=1, max_value=FANOUT), min_size=1, max_size=4
    ).map(tuple),
    max_size=40,
)


def test_empty_signature_yields_one_empty_partial():
    partials = decompose(Signature(FANOUT), page_size=4096)
    assert len(partials) == 1
    assert partials[0].ref_sid == 0
    assert partials[0].blobs == {}
    assert reassemble(partials, FANOUT) == Signature(FANOUT)


def test_small_signature_fits_one_partial():
    signature = Signature.from_paths([(1, 2), (3, 4)], FANOUT)
    partials = decompose(signature, page_size=4096)
    assert len(partials) == 1
    assert partials[0].ref_sid == 0
    assert set(partials[0].blobs) == set(signature.node_sids())


def test_partial_size_accounting():
    signature = Signature.from_paths([(1, 2)], FANOUT)
    (partial,) = decompose(signature, page_size=4096)
    assert partial.size_bytes > 0
    # PartialSignature computes its own size when not provided.
    clone = PartialSignature(ref_sid=0, blobs=dict(partial.blobs))
    assert clone.size_bytes == partial.size_bytes


def test_partials_respect_page_budget():
    paths = [(a, b, c) for a in (1, 2, 3) for b in (1, 2, 3) for c in (1, 2)]
    signature = Signature.from_paths(paths, FANOUT)
    page = 64
    partials = decompose(signature, page_size=page)
    assert len(partials) > 1
    for partial in partials:
        # A partial may exceed the page only if it holds a single node
        # whose blob alone is larger than the budget.
        if len(partial.blobs) > 1:
            assert partial.size_bytes <= page
    assert reassemble(partials, FANOUT) == signature


def test_first_partial_is_root_referenced():
    signature = Signature.from_paths([(1, 1, 1), (2, 2, 2)], FANOUT)
    partials = decompose(signature, page_size=48)
    assert partials[0].ref_sid == 0
    assert 0 in partials[0].blobs  # the root node itself is coded first


def test_every_node_coded_exactly_once():
    paths = [(a, b) for a in range(1, 5) for b in range(1, 5)]
    signature = Signature.from_paths(paths, FANOUT)
    partials = decompose(signature, page_size=56)
    seen: set[int] = set()
    for partial in partials:
        overlap = seen & set(partial.blobs)
        assert not overlap
        seen |= set(partial.blobs)
    assert seen == set(signature.node_sids())


def test_refs_are_ancestors_of_their_contents():
    """Every partial's nodes lie in the subtree of its reference — the
    property the retrieval protocol depends on."""
    paths = [(a, b, c) for a in (1, 2) for b in (1, 2, 3) for c in (1, 2, 3)]
    signature = Signature.from_paths(paths, FANOUT)
    for partial in decompose(signature, page_size=40):
        ref_path = ()
        if partial.ref_sid:
            from repro.core.sid import path_of_sid

            ref_path = path_of_sid(partial.ref_sid, FANOUT)
        for sid in partial.blobs:
            from repro.core.sid import path_of_sid

            node_path = path_of_sid(sid, FANOUT)
            assert node_path[: len(ref_path)] == ref_path


def test_retrieval_refs_order():
    path = (2, 1, 3)
    refs = retrieval_refs(path, FANOUT)
    assert refs == ancestor_sids(path, FANOUT)
    assert refs[0] == 0
    assert refs[-1] == sid_of_path(path, FANOUT)


def test_retrieval_protocol_always_finds_the_node():
    """Simulate the paper's protocol: probe ancestor references in order;
    some prefix of them must locate every represented node."""
    paths = [(a, b, c) for a in (1, 2, 3, 4) for b in (1, 2) for c in (1, 2)]
    signature = Signature.from_paths(paths, FANOUT)
    partials = {p.ref_sid: p for p in decompose(signature, page_size=40)}
    from repro.core.sid import path_of_sid

    for sid in signature.node_sids():
        node_path = path_of_sid(sid, FANOUT)
        found = False
        for ref in retrieval_refs(node_path, FANOUT):
            partial = partials.get(ref)
            if partial is not None and sid in partial:
                found = True
                break
        assert found, f"node {sid} unreachable via ancestor references"


def test_decode_roundtrips_bits():
    signature = Signature.from_paths([(1, 2), (2, 1)], FANOUT)
    (partial,) = decompose(signature, page_size=4096)
    decoded = partial.decode()
    for sid, bits in decoded.items():
        assert bits == signature.node(sid)


@settings(max_examples=40, deadline=None)
@given(path_sets, st.sampled_from([32, 48, 64, 4096]))
def test_reassembly_roundtrip_property(paths, page_size):
    signature = Signature.from_paths(paths, FANOUT)
    partials = decompose(signature, page_size=page_size)
    assert reassemble(partials, FANOUT) == signature


@settings(max_examples=30, deadline=None)
@given(path_sets)
def test_protocol_completeness_property(paths):
    from repro.core.sid import path_of_sid

    signature = Signature.from_paths(paths, FANOUT)
    partials = {p.ref_sid: p for p in decompose(signature, page_size=36)}
    for sid in signature.node_sids():
        node_path = path_of_sid(sid, FANOUT)
        assert any(
            ref in partials and sid in partials[ref]
            for ref in retrieval_refs(node_path, FANOUT)
        )
