"""Data generators and workload samplers."""

import random

import pytest

from repro.data.covertype import (
    BOOLEAN_CARDINALITIES,
    ORIGINAL_ROWS,
    PREFERENCE_CARDINALITIES,
    covertype_relation,
    scale_factor,
)
from repro.data.synthetic import DISTRIBUTIONS, SyntheticConfig, generate_relation
from repro.data.workload import (
    sample_linear_function,
    sample_predicate,
    sample_target_function,
)


# --------------------------------------------------------------------------- #
# synthetic
# --------------------------------------------------------------------------- #


def test_config_defaults_match_paper():
    config = SyntheticConfig()
    assert config.n_boolean == 3
    assert config.n_preference == 3
    assert config.cardinality == 100
    assert config.distribution == "uniform"


def test_config_validation():
    with pytest.raises(ValueError):
        SyntheticConfig(n_tuples=0)
    with pytest.raises(ValueError):
        SyntheticConfig(distribution="weird")
    with pytest.raises(ValueError):
        SyntheticConfig(boolean_names=("A",), n_boolean=2)


def test_generate_shapes():
    config = SyntheticConfig(
        n_tuples=500, n_boolean=2, cardinality=7, n_preference=4, seed=1
    )
    relation = generate_relation(config)
    assert len(relation) == 500
    assert relation.schema.n_boolean == 2
    assert relation.schema.n_preference == 4
    for tid in relation.tids():
        assert all(0 <= v < 7 for v in relation.bool_row(tid))
        assert all(0.0 <= v <= 1.0 for v in relation.pref_point(tid))


def test_generation_is_deterministic():
    config = SyntheticConfig(n_tuples=100, seed=9)
    a = generate_relation(config)
    b = generate_relation(config)
    assert all(a.bool_row(t) == b.bool_row(t) for t in a.tids())
    assert all(a.pref_point(t) == b.pref_point(t) for t in a.tids())


def test_seeds_differ():
    a = generate_relation(SyntheticConfig(n_tuples=100, seed=1))
    b = generate_relation(SyntheticConfig(n_tuples=100, seed=2))
    assert any(a.pref_point(t) != b.pref_point(t) for t in a.tids())


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
def test_all_distributions_generate(distribution):
    config = SyntheticConfig(
        n_tuples=300, distribution=distribution, seed=4
    )
    relation = generate_relation(config)
    assert len(relation) == 300


def test_anticorrelated_has_bigger_skyline_than_correlated():
    from repro.baselines.skyline_algs import sfs_skyline

    sizes = {}
    for distribution in ("correlated", "anticorrelated"):
        relation = generate_relation(
            SyntheticConfig(
                n_tuples=2000, n_preference=2, distribution=distribution, seed=6
            )
        )
        sizes[distribution] = len(
            sfs_skyline(list(relation.pref_points()))
        )
    assert sizes["anticorrelated"] > 3 * sizes["correlated"]


# --------------------------------------------------------------------------- #
# covertype twin
# --------------------------------------------------------------------------- #


def test_covertype_schema_matches_paper():
    assert len(BOOLEAN_CARDINALITIES) == 12
    assert BOOLEAN_CARDINALITIES[:4] == (255, 207, 185, 67)
    assert PREFERENCE_CARDINALITIES == (1989, 5787, 5827)
    assert ORIGINAL_ROWS == 581_012


def test_covertype_relation_shapes():
    relation = covertype_relation(n_rows=2000, seed=1)
    assert len(relation) == 2000
    assert relation.schema.n_boolean == 12
    assert relation.schema.n_preference == 3
    for i, cardinality in enumerate(BOOLEAN_CARDINALITIES):
        values = {relation.bool_row(t)[i] for t in relation.tids()}
        assert all(0 <= v < cardinality for v in values)


def test_covertype_boolean_marginals_are_skewed():
    relation = covertype_relation(n_rows=5000, seed=2)
    # The most frequent value of the first attribute should hold well over
    # the uniform share (5000 / 255 ≈ 20).
    from collections import Counter

    counts = Counter(relation.bool_row(t)[0] for t in relation.tids())
    assert counts.most_common(1)[0][1] > 200


def test_covertype_preferences_in_unit_range_and_correlated():
    import numpy as np

    relation = covertype_relation(n_rows=3000, seed=3)
    matrix = np.array([relation.pref_point(t) for t in relation.tids()])
    assert matrix.min() >= 0.0 and matrix.max() <= 1.0
    corr = np.corrcoef(matrix.T)
    assert corr[0, 1] > 0.3  # mild positive correlation, like the original


def test_scale_factor():
    assert scale_factor(ORIGINAL_ROWS) == 1.0
    assert scale_factor(58_101) == pytest.approx(0.1, rel=0.01)


# --------------------------------------------------------------------------- #
# workload samplers
# --------------------------------------------------------------------------- #


def test_sample_predicate_is_live(small_relation):
    rng = random.Random(0)
    for n in (1, 2, 3):
        predicate = sample_predicate(small_relation, n, rng)
        assert len(predicate) == n
        assert any(
            predicate.matches(small_relation, tid)
            for tid in small_relation.tids()
        )


def test_sample_predicate_too_many_dims(small_relation):
    with pytest.raises(ValueError):
        sample_predicate(small_relation, 99, random.Random(0))


def test_sample_predicate_restricted_dims(small_relation):
    rng = random.Random(0)
    predicate = sample_predicate(small_relation, 1, rng, dims=["A2"])
    assert predicate.dims() == ("A2",)


def test_sample_linear_function_positive_weights():
    rng = random.Random(0)
    fn = sample_linear_function(3, rng)
    assert len(fn.weights) == 3
    assert all(w > 0 for w in fn.weights)


def test_sample_target_function(small_relation):
    rng = random.Random(0)
    fn = sample_target_function(small_relation, rng)
    assert len(fn.target) == small_relation.schema.n_preference
    assert fn.score(fn.target) == 0.0
