"""STR bulk loading."""

import random

import pytest

from repro.rtree.bulk import bulk_load
from repro.rtree.geometry import Rect
from repro.rtree.node import tuple_path

from tests.rtree.test_rtree import check_invariants, random_points


def test_bulk_load_empty():
    tree = bulk_load([], dims=2, max_entries=4)
    assert len(tree) == 0
    assert tree.height() == 1


def test_bulk_load_single():
    tree = bulk_load([(3, (0.5, 0.5))], dims=2, max_entries=4)
    assert len(tree) == 1
    assert tree.path_of(3) == (1,)


def test_bulk_load_structure_and_paths():
    points = random_points(500, seed=9)
    tree = bulk_load(points, dims=2, max_entries=8)
    assert len(tree) == 500
    check_invariants(tree)
    for tid, point in points:
        assert tree.point_of(tid) == point
        assert tree.path_of(tid) == tuple_path(tree.leaf_of(tid), tid)


def test_bulk_load_range_search_agrees():
    points = random_points(400, seed=21)
    tree = bulk_load(points, dims=2, max_entries=8)
    query = Rect((0.1, 0.1), (0.4, 0.8))
    expected = sorted(t for t, p in points if query.contains_point(p))
    assert sorted(tree.range_search(query)) == expected


def test_bulk_load_is_packed():
    """STR should produce far fewer nodes than one-at-a-time insertion."""
    points = random_points(1000, seed=4)
    bulk = bulk_load(points, dims=2, max_entries=16, fill_factor=0.9)
    # ~1000/14 leaves plus a thin upper structure.
    assert bulk.node_count() <= 1000 / (16 * 0.9 * 0.8)


def test_bulk_load_duplicate_tid_rejected():
    with pytest.raises(ValueError):
        bulk_load([(1, (0, 0)), (1, (1, 1))], dims=2, max_entries=4)


def test_bulk_load_dim_mismatch_rejected():
    with pytest.raises(ValueError):
        bulk_load([(1, (0, 0, 0))], dims=2, max_entries=4)


def test_bulk_load_supports_dynamic_inserts_afterwards():
    points = random_points(200, seed=30)
    tree = bulk_load(points, dims=2, max_entries=8)
    rng = random.Random(31)
    for tid in range(200, 260):
        tree.insert(tid, (rng.random(), rng.random()))
    check_invariants(tree)
    assert len(tree) == 260


@pytest.mark.parametrize("n", [91, 46, 101, 137, 405])
def test_bulk_load_never_strands_small_leaves(n):
    """Regression: greedy chunking stranded 1-entry leaves (91 items at
    capacity 45 → 45, 45, 1), breaking the min-fill invariant."""
    points = random_points(n, seed=n)
    tree = bulk_load(points, dims=2, max_entries=50, fill_factor=0.9)
    check_invariants(tree)


def test_bulk_load_then_delete_everything():
    """Deletions exercise underflow handling on packed nodes."""
    points = random_points(137, seed=1)
    tree = bulk_load(points, dims=2, max_entries=8)
    rng = random.Random(2)
    order = [tid for tid, _ in points]
    rng.shuffle(order)
    for tid in order:
        tree.delete(tid)
        if len(tree) > 0:
            check_invariants(tree)
    assert len(tree) == 0


def test_bulk_load_3d():
    rng = random.Random(55)
    points = [
        (tid, (rng.random(), rng.random(), rng.random())) for tid in range(300)
    ]
    tree = bulk_load(points, dims=3, max_entries=8)
    check_invariants(tree)
    assert len(tree) == 300
