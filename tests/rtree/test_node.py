"""Node slot stability — the property signature maintenance relies on."""

import pytest

from repro.rtree.geometry import Rect
from repro.rtree.node import Entry, RTreeNode, subtree_tids, tuple_path


def leaf_entry(tid, x=0.0, y=0.0):
    return Entry(Rect.from_point((x, y)), tid=tid)


def test_entry_requires_exactly_one_payload():
    with pytest.raises(ValueError):
        Entry(Rect.from_point((0, 0)))
    with pytest.raises(ValueError):
        Entry(
            Rect.from_point((0, 0)),
            child=RTreeNode(0, 0, 4),
            tid=1,
        )


def test_add_entry_appends_then_reuses_first_free_slot():
    node = RTreeNode(0, 0, capacity=4)
    slots = [node.add_entry(leaf_entry(t)) for t in range(3)]
    assert slots == [0, 1, 2]
    node.remove_slot(1)
    assert node.live_count() == 2
    # The paper: "when a new tuple is added, the first free entry is
    # assigned" — so tid 9 lands in slot 1, and slots 0/2 are untouched.
    assert node.add_entry(leaf_entry(9)) == 1
    assert node.slot_of_tid(9) == 1
    assert node.slot_of_tid(0) == 0
    assert node.slot_of_tid(2) == 2


def test_overflow_raises():
    node = RTreeNode(0, 0, capacity=2)
    node.add_entry(leaf_entry(0))
    node.add_entry(leaf_entry(1))
    assert node.is_full()
    with pytest.raises(OverflowError):
        node.add_entry(leaf_entry(2))


def test_remove_trailing_hole_is_trimmed():
    node = RTreeNode(0, 0, capacity=4)
    for t in range(3):
        node.add_entry(leaf_entry(t))
    node.remove_slot(2)
    assert len(node.entries) == 2  # trailing hole trimmed
    node.remove_slot(0)
    assert len(node.entries) == 2  # middle hole stays (slot stability)
    assert node.entries[0] is None


def test_remove_free_slot_rejected():
    node = RTreeNode(0, 0, capacity=4)
    node.add_entry(leaf_entry(0))
    node.add_entry(leaf_entry(1))
    node.remove_slot(0)
    with pytest.raises(ValueError):
        node.remove_slot(0)


def test_live_entries_skips_holes():
    node = RTreeNode(0, 0, capacity=4)
    for t in range(4):
        node.add_entry(leaf_entry(t))
    node.remove_slot(1)
    assert [slot for slot, _ in node.live_entries()] == [0, 2, 3]


def test_mbr_covers_live_entries():
    node = RTreeNode(0, 0, capacity=4)
    node.add_entry(leaf_entry(0, 0.0, 0.0))
    node.add_entry(leaf_entry(1, 1.0, 2.0))
    assert node.mbr() == Rect((0, 0), (1, 2))


def test_mbr_of_empty_node_rejected():
    with pytest.raises(ValueError):
        RTreeNode(0, 0, 4).mbr()


def test_paths_and_tuple_path():
    root = RTreeNode(0, 1, capacity=4)
    leaf_a = RTreeNode(1, 0, capacity=4)
    leaf_b = RTreeNode(2, 0, capacity=4)
    leaf_a.add_entry(leaf_entry(10))
    leaf_b.add_entry(leaf_entry(20))
    leaf_b.add_entry(leaf_entry(21))
    root.add_entry(Entry(leaf_a.mbr(), child=leaf_a))
    root.add_entry(Entry(leaf_b.mbr(), child=leaf_b))
    assert root.path() == ()
    assert leaf_a.path() == (1,)
    assert leaf_b.path() == (2,)
    assert tuple_path(leaf_a, 10) == (1, 1)
    assert tuple_path(leaf_b, 21) == (2, 2)
    assert sorted(subtree_tids(root)) == [10, 20, 21]


def test_slot_lookup_errors():
    node = RTreeNode(0, 0, capacity=4)
    node.add_entry(leaf_entry(5))
    with pytest.raises(ValueError):
        node.slot_of_tid(6)
    with pytest.raises(ValueError):
        node.slot_of_child(RTreeNode(9, 0, 4))


def test_capacity_minimum():
    with pytest.raises(ValueError):
        RTreeNode(0, 0, capacity=1)
