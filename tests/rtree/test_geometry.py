"""Rectangles, mindist and dominance."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rtree.geometry import Rect, dominates, mindist, sum_lower_bound


def test_rect_validation():
    with pytest.raises(ValueError):
        Rect((0, 0), (1,))
    with pytest.raises(ValueError):
        Rect((2, 0), (1, 1))


def test_rect_is_immutable():
    rect = Rect((0, 0), (1, 1))
    with pytest.raises(AttributeError):
        rect.lows = (5, 5)


def test_from_point_is_degenerate():
    rect = Rect.from_point((0.5, 0.7))
    assert rect.lows == rect.highs == (0.5, 0.7)
    assert rect.area() == 0.0


def test_union_and_union_all():
    a = Rect((0, 0), (1, 1))
    b = Rect((2, -1), (3, 0.5))
    union = a.union(b)
    assert union == Rect((0, -1), (3, 1))
    assert Rect.union_all([a, b]) == union


def test_union_all_empty_rejected():
    with pytest.raises(ValueError):
        Rect.union_all([])


def test_area_margin_center():
    rect = Rect((0, 0), (2, 3))
    assert rect.area() == 6.0
    assert rect.margin() == 5.0
    assert rect.center() == (1.0, 1.5)


def test_enlargement():
    a = Rect((0, 0), (1, 1))
    inside = Rect((0.2, 0.2), (0.8, 0.8))
    outside = Rect((2, 2), (3, 3))
    assert a.enlargement(inside) == 0.0
    assert a.enlargement(outside) == pytest.approx(9.0 - 1.0)


def test_intersects_and_overlap():
    a = Rect((0, 0), (2, 2))
    b = Rect((1, 1), (3, 3))
    c = Rect((5, 5), (6, 6))
    assert a.intersects(b)
    assert not a.intersects(c)
    assert a.overlap_area(b) == 1.0
    assert a.overlap_area(c) == 0.0


def test_touching_rects_intersect_with_zero_overlap():
    a = Rect((0, 0), (1, 1))
    b = Rect((1, 0), (2, 1))
    assert a.intersects(b)
    assert a.overlap_area(b) == 0.0


def test_containment():
    outer = Rect((0, 0), (4, 4))
    inner = Rect((1, 1), (2, 2))
    assert outer.contains_rect(inner)
    assert not inner.contains_rect(outer)
    assert outer.contains_point((0, 4))
    assert not outer.contains_point((4.1, 0))


def test_mindist_cases():
    rect = Rect((1, 1), (2, 2))
    assert mindist(rect, (1.5, 1.5)) == 0.0  # inside
    assert mindist(rect, (0, 1.5)) == 1.0  # left of
    assert mindist(rect, (0, 0)) == 2.0  # diagonal corner


def test_sum_lower_bound():
    assert sum_lower_bound(Rect((1, 2, 3), (9, 9, 9))) == 6.0


def test_dominates_semantics():
    assert dominates((1, 1), (2, 2))
    assert dominates((1, 2), (1, 3))
    assert not dominates((1, 1), (1, 1))  # equal: not strict anywhere
    assert not dominates((1, 3), (2, 2))  # incomparable


points = st.lists(
    st.floats(min_value=0, max_value=1, allow_nan=False), min_size=2, max_size=2
)


@given(points, points)
def test_dominance_is_antisymmetric(p, q):
    assert not (dominates(p, q) and dominates(q, p))


@given(points, points, points)
def test_dominance_is_transitive(p, q, r):
    if dominates(p, q) and dominates(q, r):
        assert dominates(p, r)


@given(points, points, points)
def test_mindist_lower_bounds_point_distance(p, q, r):
    rect = Rect.from_point(p).union(Rect.from_point(q))
    dist = sum((a - b) ** 2 for a, b in zip(p, r))
    assert mindist(rect, r) <= dist + 1e-12
