"""Dynamic R-tree behaviour: structure, search, path-change tracking."""

import random

import pytest

from repro.rtree.geometry import Rect
from repro.rtree.node import subtree_tids, tuple_path
from repro.rtree.rtree import RTree, fanout_for_page


def check_invariants(tree: RTree) -> None:
    """Structural invariants every mutation must preserve."""
    seen_tids = []
    stack = [(tree.root, None)]
    while stack:
        node, parent = stack.pop()
        if parent is not None:
            assert node.parent is parent
            # Parent entry MBR covers the child's actual MBR.
            slot = parent.slot_of_child(node)
            assert parent.entries[slot].mbr.contains_rect(node.mbr())
            assert node.live_count() >= tree.min_entries
        assert node.live_count() <= tree.max_entries
        assert len(node.entries) <= tree.max_entries
        for _, entry in node.live_entries():
            if node.is_leaf:
                assert entry.tid is not None
                seen_tids.append(entry.tid)
                assert entry.mbr == Rect.from_point(tree.point_of(entry.tid))
            else:
                assert entry.child is not None
                assert entry.child.level == node.level - 1
                stack.append((entry.child, node))
    assert sorted(seen_tids) == sorted(tree._points)
    # Path map agrees with the actual structure.
    for tid in tree._points:
        assert tree.path_of(tid) == tuple_path(tree.leaf_of(tid), tid)


@pytest.fixture
def tree():
    return RTree(dims=2, max_entries=4, min_entries=2)


def random_points(n, seed=0):
    rng = random.Random(seed)
    return [(tid, (rng.random(), rng.random())) for tid in range(n)]


def test_fanout_for_page_matches_paper_orders():
    # Paper quotes M = 204 for 2-D and ~94 for 5-D at 4 KB pages.
    assert fanout_for_page(4096, 2) == 204
    assert 88 <= fanout_for_page(4096, 5) <= 96
    assert fanout_for_page(64, 10) == 4  # floor


def test_empty_tree(tree):
    assert len(tree) == 0
    assert tree.height() == 1
    assert tree.range_search(Rect((0, 0), (1, 1))) == []


def test_single_insert_reports_its_own_path(tree):
    changes = tree.insert(7, (0.5, 0.5))
    assert len(changes) == 1
    assert changes[0].tid == 7
    assert changes[0].old_path is None
    assert changes[0].new_path == (1,)
    assert tree.path_of(7) == (1,)


def test_duplicate_tid_rejected(tree):
    tree.insert(1, (0.1, 0.1))
    with pytest.raises(KeyError):
        tree.insert(1, (0.2, 0.2))


def test_wrong_dimensionality_rejected(tree):
    with pytest.raises(ValueError):
        tree.insert(1, (0.1, 0.2, 0.3))


def test_inserts_without_split_do_not_move_others(tree):
    tree.insert(0, (0.1, 0.1))
    tree.insert(1, (0.2, 0.2))
    changes = tree.insert(2, (0.3, 0.3))
    assert [c.tid for c in changes] == [2]


def test_split_reports_moved_tuples(tree):
    for tid in range(4):
        tree.insert(tid, (tid / 10, tid / 10))
    changes = tree.insert(4, (0.9, 0.9))  # forces the first leaf split
    changed_tids = {c.tid for c in changes}
    assert 4 in changed_tids
    # The split redistributed the original tuples: every change record is
    # consistent with the tree's current state.
    for change in changes:
        assert change.new_path == tree.path_of(change.tid)
    check_invariants(tree)
    assert tree.height() == 2


@pytest.mark.parametrize("split", ["quadratic", "linear", "rstar"])
def test_invariants_after_many_inserts(split):
    tree = RTree(dims=2, max_entries=4, min_entries=2, split=split)
    for tid, point in random_points(300, seed=42):
        tree.insert(tid, point)
    check_invariants(tree)
    assert len(tree) == 300
    assert tree.height() >= 3


@pytest.mark.parametrize("split", ["quadratic", "linear", "rstar"])
def test_change_records_are_exact(split):
    """After every insert, replaying the change records over a shadow path
    map must reproduce the tree's own path map exactly."""
    tree = RTree(dims=2, max_entries=4, min_entries=2, split=split)
    shadow: dict[int, tuple] = {}
    for tid, point in random_points(200, seed=3):
        for change in tree.insert(tid, point):
            if change.new_path is None:
                del shadow[change.tid]
            else:
                shadow[change.tid] = change.new_path
        assert shadow == tree.all_paths(), f"diverged after inserting {tid}"


def test_range_search_matches_linear_scan():
    tree = RTree(dims=2, max_entries=4, min_entries=2)
    points = random_points(250, seed=8)
    for tid, point in points:
        tree.insert(tid, point)
    query = Rect((0.2, 0.3), (0.6, 0.9))
    expected = sorted(
        tid for tid, p in points if query.contains_point(p)
    )
    assert sorted(tree.range_search(query)) == expected


def test_delete_simple(tree):
    tree.insert(0, (0.1, 0.1))
    tree.insert(1, (0.2, 0.2))
    tree.insert(2, (0.3, 0.3))
    changes = tree.delete(1)
    assert any(c.tid == 1 and c.new_path is None for c in changes)
    assert len(tree) == 2
    with pytest.raises(KeyError):
        tree.delete(1)
    check_invariants(tree)


def test_delete_with_condensation():
    tree = RTree(dims=2, max_entries=4, min_entries=2)
    points = random_points(120, seed=5)
    for tid, point in points:
        tree.insert(tid, point)
    rng = random.Random(6)
    alive = dict(points)
    for tid in rng.sample(list(alive), 90):
        changes = tree.delete(tid)
        del alive[tid]
        for change in changes:
            if change.new_path is not None:
                assert tree.path_of(change.tid) == change.new_path
        check_invariants(tree)
    assert sorted(tree._points) == sorted(alive)


def test_delete_everything():
    tree = RTree(dims=2, max_entries=4, min_entries=2)
    for tid, point in random_points(50, seed=13):
        tree.insert(tid, point)
    for tid in range(50):
        tree.delete(tid)
    assert len(tree) == 0
    assert tree.height() == 1


def test_update_moves_point(tree):
    for tid, point in random_points(30, seed=2):
        tree.insert(tid, point)
    changes = tree.update(5, (0.99, 0.99))
    assert tree.point_of(5) == (0.99, 0.99)
    assert any(c.tid == 5 for c in changes)
    check_invariants(tree)


def test_disk_pages_track_nodes():
    tree = RTree(dims=2, max_entries=4, min_entries=2)
    for tid, point in random_points(100, seed=1):
        tree.insert(tid, point)
    live_nodes = list(tree.nodes())
    assert tree.disk.page_count("rtree") == len(live_nodes)
    for node in live_nodes:
        assert tree.disk.peek(node.page_id).payload is node


def test_root_split_changes_all_paths(tree):
    # Fill one leaf (the root), then overflow it: every tuple's path gains
    # a leading component.
    for tid in range(4):
        tree.insert(tid, (tid / 10, 0.5))
    old_paths = tree.all_paths()
    assert all(len(p) == 1 for p in old_paths.values())
    tree.insert(4, (0.9, 0.5))
    new_paths = tree.all_paths()
    assert all(len(p) == 2 for p in new_paths.values())


def test_min_entries_validation():
    with pytest.raises(ValueError):
        RTree(dims=2, max_entries=4, min_entries=3)  # > M/2
    with pytest.raises(ValueError):
        RTree(dims=2, max_entries=4, min_entries=0)


def test_subtree_tids_complete():
    tree = RTree(dims=2, max_entries=4, min_entries=2)
    for tid, point in random_points(64, seed=77):
        tree.insert(tid, point)
    assert sorted(subtree_tids(tree.root)) == list(range(64))
