"""Shared fixtures.

``paper_*`` fixtures reproduce the paper's running example exactly: the
eight-tuple database of Table I, the R-tree of Figure 1 (m = 1, M = 2) and
the paths ⟨1,1,1⟩ ... ⟨2,2,2⟩, so signature/assembly/maintenance behaviour
can be checked bit for bit against Figures 2-4.

The seeded data sets themselves live in :mod:`repro.data.fixtures`, shared
with ``benchmarks/conftest.py`` and the ``python -m repro.bench`` runner so
every measurement path sees identical inputs; this module only wraps them
as pytest fixtures.
"""

from __future__ import annotations

import random

import pytest

from repro.cube.relation import Relation
from repro.data.fixtures import (
    PAPER_PATHS,
    PAPER_ROWS,
    build_paper_rtree,
    paper_relation as _paper_relation,
    small_config as _small_config,
)
from repro.data.synthetic import SyntheticConfig, generate_relation
from repro.rtree.rtree import RTree
from repro.system import build_system

__all__ = ["PAPER_PATHS", "PAPER_ROWS"]


@pytest.fixture
def paper_relation() -> Relation:
    return _paper_relation()


@pytest.fixture
def paper_rtree(paper_relation: Relation) -> RTree:
    """The exact R-tree of Figure 1: root → {N1, N2} → four leaves of two
    tuples each, in Table I's path order."""
    return build_paper_rtree(paper_relation)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20080401)


@pytest.fixture(scope="session")
def small_config() -> SyntheticConfig:
    return _small_config()


@pytest.fixture(scope="session")
def small_relation(small_config):
    return generate_relation(small_config)


@pytest.fixture(scope="session")
def small_system(small_relation):
    """A session-scoped, read-only built system for query-correctness tests.

    Tests that mutate state must build their own (see ``fresh_system``).
    """
    return build_system(small_relation, fanout=8)


@pytest.fixture
def fresh_system():
    """Factory for private mutable systems."""

    def _build(
        n_tuples: int = 600,
        n_boolean: int = 2,
        cardinality: int = 5,
        n_preference: int = 2,
        seed: int = 23,
        **kwargs,
    ):
        config = SyntheticConfig(
            n_tuples=n_tuples,
            n_boolean=n_boolean,
            cardinality=cardinality,
            n_preference=n_preference,
            seed=seed,
        )
        relation = generate_relation(config)
        kwargs.setdefault("fanout", 6)
        return build_system(relation, **kwargs)

    return _build
