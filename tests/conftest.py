"""Shared fixtures.

``paper_*`` fixtures reproduce the paper's running example exactly: the
eight-tuple database of Table I, the R-tree of Figure 1 (m = 1, M = 2) and
the paths ⟨1,1,1⟩ ... ⟨2,2,2⟩, so signature/assembly/maintenance behaviour
can be checked bit for bit against Figures 2-4.
"""

from __future__ import annotations

import random

import pytest

from repro.cube.relation import Relation
from repro.cube.schema import Schema
from repro.data.synthetic import SyntheticConfig, generate_relation
from repro.rtree.geometry import Rect
from repro.rtree.node import Entry
from repro.rtree.rtree import RTree
from repro.system import build_system

#: Table I, in order t1..t8 (tids 0..7).
PAPER_ROWS = [
    # (A,    B,    X,     Y)
    ("a1", "b1", 0.00, 0.40),
    ("a2", "b2", 0.20, 0.60),
    ("a1", "b1", 0.30, 0.70),
    ("a3", "b3", 0.50, 0.40),
    ("a4", "b1", 0.60, 0.00),
    ("a2", "b3", 0.72, 0.30),
    ("a4", "b2", 0.72, 0.36),
    ("a3", "b3", 0.85, 0.62),
]

#: The paths column of Table I (1-based slot positions, root first).
PAPER_PATHS = {
    0: (1, 1, 1),
    1: (1, 1, 2),
    2: (1, 2, 1),
    3: (1, 2, 2),
    4: (2, 1, 1),
    5: (2, 1, 2),
    6: (2, 2, 1),
    7: (2, 2, 2),
}


@pytest.fixture
def paper_relation() -> Relation:
    schema = Schema(("A", "B"), ("X", "Y"))
    bool_rows = [(a, b) for a, b, _, _ in PAPER_ROWS]
    pref_rows = [(x, y) for _, _, x, y in PAPER_ROWS]
    return Relation(schema, bool_rows, pref_rows)


@pytest.fixture
def paper_rtree(paper_relation: Relation) -> RTree:
    """The exact R-tree of Figure 1: root → {N1, N2} → four leaves of two
    tuples each, in Table I's path order."""
    tree = RTree(dims=2, max_entries=2, min_entries=1)
    leaves = []
    for first in range(0, 8, 2):
        leaf = tree._new_node(level=0)
        for tid in (first, first + 1):
            point = paper_relation.pref_point(tid)
            leaf.add_entry(Entry(Rect.from_point(point), tid=tid))
        tree._sync_page(leaf)
        leaves.append(leaf)
    inner = []
    for half in range(2):
        node = tree._new_node(level=1)
        for leaf in leaves[2 * half : 2 * half + 2]:
            node.add_entry(Entry(leaf.mbr(), child=leaf))
        tree._sync_page(node)
        inner.append(node)
    root = tree._new_node(level=2)
    for node in inner:
        root.add_entry(Entry(node.mbr(), child=node))
    tree._sync_page(root)

    points = {tid: paper_relation.pref_point(tid) for tid in range(8)}
    tid_leaf = {tid: leaves[tid // 2] for tid in range(8)}
    tree._adopt_bulk(root, points, tid_leaf)
    return tree


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20080401)


@pytest.fixture(scope="session")
def small_config() -> SyntheticConfig:
    return SyntheticConfig(
        n_tuples=1500,
        n_boolean=3,
        cardinality=8,
        n_preference=2,
        distribution="uniform",
        seed=11,
    )


@pytest.fixture(scope="session")
def small_relation(small_config):
    return generate_relation(small_config)


@pytest.fixture(scope="session")
def small_system(small_relation):
    """A session-scoped, read-only built system for query-correctness tests.

    Tests that mutate state must build their own (see ``fresh_system``).
    """
    return build_system(small_relation, fanout=8)


@pytest.fixture
def fresh_system():
    """Factory for private mutable systems."""

    def _build(
        n_tuples: int = 600,
        n_boolean: int = 2,
        cardinality: int = 5,
        n_preference: int = 2,
        seed: int = 23,
        **kwargs,
    ):
        config = SyntheticConfig(
            n_tuples=n_tuples,
            n_boolean=n_boolean,
            cardinality=cardinality,
            n_preference=n_preference,
            seed=seed,
        )
        relation = generate_relation(config)
        kwargs.setdefault("fanout", 6)
        return build_system(relation, **kwargs)

    return _build
