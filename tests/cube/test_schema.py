"""Schema validation and lookups."""

import pytest

from repro.cube.schema import Schema


def test_basic_schema():
    schema = Schema(("A", "B"), ("X", "Y"))
    assert schema.n_boolean == 2
    assert schema.n_preference == 2
    assert schema.boolean_position("B") == 1
    assert schema.preference_position("X") == 0


def test_duplicate_dims_rejected():
    with pytest.raises(ValueError):
        Schema(("A", "A"), ("X",))
    with pytest.raises(ValueError):
        Schema(("A",), ("X", "X"))


def test_preference_dims_required():
    with pytest.raises(ValueError):
        Schema(("A",), ())


def test_no_boolean_dims_allowed():
    schema = Schema((), ("X",))
    assert schema.n_boolean == 0


def test_unknown_dim_lookup():
    schema = Schema(("A",), ("X",))
    with pytest.raises(KeyError):
        schema.boolean_position("Z")
    with pytest.raises(KeyError):
        schema.preference_position("Z")


def test_schemas_equal_by_dims():
    assert Schema(("A",), ("X",)) == Schema(("A",), ("X",))
    assert Schema(("A",), ("X",)) != Schema(("B",), ("X",))
