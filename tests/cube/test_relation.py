"""Relation heap file: access paths, page accounting, growth."""

import pytest

from repro.cube.relation import Relation
from repro.cube.schema import Schema
from repro.storage.counters import BTABLE, DBOOL, IOCounters
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def schema():
    return Schema(("A", "B"), ("X", "Y"))


@pytest.fixture
def relation(schema):
    bool_rows = [(i % 3, i % 2) for i in range(20)]
    pref_rows = [(i / 20, 1 - i / 20) for i in range(20)]
    return Relation(schema, bool_rows, pref_rows)


def test_row_access(relation):
    assert relation.bool_row(4) == (1, 0)
    assert relation.pref_point(4) == (0.2, 0.8)
    assert relation.bool_value(4, "A") == 1
    assert relation.bool_value(4, "B") == 0


def test_len_and_tids(relation):
    assert len(relation) == 20
    assert list(relation.tids()) == list(range(20))


def test_width_validation(schema):
    with pytest.raises(ValueError):
        Relation(schema, [(1,)], [(0.0, 0.0)])
    with pytest.raises(ValueError):
        Relation(schema, [(1, 2)], [(0.0,)])
    with pytest.raises(ValueError):
        Relation(schema, [(1, 2)], [])


def test_scan_reads_every_heap_page_once(schema):
    disk = SimulatedDisk(page_size=128)  # tiny pages => many heap pages
    bool_rows = [(i, i) for i in range(100)]
    pref_rows = [(float(i), float(i)) for i in range(100)]
    relation = Relation(schema, bool_rows, pref_rows, disk=disk)
    counters = IOCounters()
    tids = list(relation.scan(counters, BTABLE))
    assert tids == list(range(100))
    assert counters.get(BTABLE) == relation.heap_page_count()
    assert relation.heap_page_count() > 1


def test_fetch_counts_one_page_read(relation):
    counters = IOCounters()
    bool_row, pref_row = relation.fetch(7, counters=counters)
    assert bool_row == relation.bool_row(7)
    assert pref_row == relation.pref_point(7)
    assert counters.get(DBOOL) == 1


def test_fetch_out_of_range(relation):
    with pytest.raises(IndexError):
        relation.fetch(99)


def test_append_grows_heap(schema):
    disk = SimulatedDisk(page_size=128)
    relation = Relation(schema, [], [], disk=disk)
    for i in range(50):
        tid = relation.append((i, i), (float(i), float(i)))
        assert tid == i
    assert len(relation) == 50
    assert list(relation.scan()) == list(range(50))
    assert relation.bool_row(49) == (49, 49)


def test_append_validates_width(relation):
    with pytest.raises(ValueError):
        relation.append((1,), (0.0, 0.0))
    with pytest.raises(ValueError):
        relation.append((1, 2), (0.0,))


def test_overwrite_pref(relation):
    relation.overwrite_pref(3, (9.0, 9.0))
    assert relation.pref_point(3) == (9.0, 9.0)
    with pytest.raises(ValueError):
        relation.overwrite_pref(3, (1.0,))


def test_pref_points_enumerates_all(relation):
    points = list(relation.pref_points())
    assert len(points) == 20
    assert points[0] == (0, (0.0, 1.0))


def test_values_coerced_to_float(schema):
    relation = Relation(schema, [(1, 1)], [(1, 2)])
    assert relation.pref_point(0) == (1.0, 2.0)
    assert isinstance(relation.pref_point(0)[0], float)
