"""Relation heap file: access paths, page accounting, growth."""

import pytest

from repro.cube.relation import Relation
from repro.cube.schema import Schema
from repro.storage.counters import BTABLE, DBOOL, IOCounters
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def schema():
    return Schema(("A", "B"), ("X", "Y"))


@pytest.fixture
def relation(schema):
    bool_rows = [(i % 3, i % 2) for i in range(20)]
    pref_rows = [(i / 20, 1 - i / 20) for i in range(20)]
    return Relation(schema, bool_rows, pref_rows)


def test_row_access(relation):
    assert relation.bool_row(4) == (1, 0)
    assert relation.pref_point(4) == (0.2, 0.8)
    assert relation.bool_value(4, "A") == 1
    assert relation.bool_value(4, "B") == 0


def test_len_and_tids(relation):
    assert len(relation) == 20
    assert list(relation.tids()) == list(range(20))


def test_width_validation(schema):
    with pytest.raises(ValueError):
        Relation(schema, [(1,)], [(0.0, 0.0)])
    with pytest.raises(ValueError):
        Relation(schema, [(1, 2)], [(0.0,)])
    with pytest.raises(ValueError):
        Relation(schema, [(1, 2)], [])


def test_scan_reads_every_heap_page_once(schema):
    disk = SimulatedDisk(page_size=128)  # tiny pages => many heap pages
    bool_rows = [(i, i) for i in range(100)]
    pref_rows = [(float(i), float(i)) for i in range(100)]
    relation = Relation(schema, bool_rows, pref_rows, disk=disk)
    counters = IOCounters()
    tids = list(relation.scan(counters, BTABLE))
    assert tids == list(range(100))
    assert counters.get(BTABLE) == relation.heap_page_count()
    assert relation.heap_page_count() > 1


def test_fetch_counts_one_page_read(relation):
    counters = IOCounters()
    bool_row, pref_row = relation.fetch(7, counters=counters)
    assert bool_row == relation.bool_row(7)
    assert pref_row == relation.pref_point(7)
    assert counters.get(DBOOL) == 1


def test_fetch_out_of_range(relation):
    with pytest.raises(IndexError):
        relation.fetch(99)


def test_append_grows_heap(schema):
    disk = SimulatedDisk(page_size=128)
    relation = Relation(schema, [], [], disk=disk)
    for i in range(50):
        tid = relation.append((i, i), (float(i), float(i)))
        assert tid == i
    assert len(relation) == 50
    assert list(relation.scan()) == list(range(50))
    assert relation.bool_row(49) == (49, 49)


def test_append_validates_width(relation):
    with pytest.raises(ValueError):
        relation.append((1,), (0.0, 0.0))
    with pytest.raises(ValueError):
        relation.append((1, 2), (0.0,))


def test_overwrite_pref(relation):
    relation.overwrite_pref(3, (9.0, 9.0))
    assert relation.pref_point(3) == (9.0, 9.0)
    with pytest.raises(ValueError):
        relation.overwrite_pref(3, (1.0,))


def test_pref_points_enumerates_all(relation):
    points = list(relation.pref_points())
    assert len(points) == 20
    assert points[0] == (0, (0.0, 1.0))


def test_values_coerced_to_float(schema):
    relation = Relation(schema, [(1, 1)], [(1, 2)])
    assert relation.pref_point(0) == (1.0, 2.0)
    assert isinstance(relation.pref_point(0)[0], float)


# --------------------------------------------------------------------------- #
# tombstones
# --------------------------------------------------------------------------- #


def test_tombstone_hides_row_from_live_views(relation):
    relation.tombstone(5)
    assert not relation.is_live(5)
    assert 5 not in set(relation.live_tids())
    assert 5 not in list(relation.scan())
    assert all(tid != 5 for tid, _ in relation.pref_points())
    assert relation.live_count() == 19
    # Row data and numbering survive: len() and fetch are unchanged.
    assert len(relation) == 20
    assert relation.bool_row(5) == (2, 1)


def test_tombstone_is_idempotent_and_bounds_checked(relation):
    relation.tombstone(5)
    relation.tombstone(5)
    assert relation.live_count() == 19
    with pytest.raises(IndexError):
        relation.tombstone(20)


def test_scan_still_reads_pages_holding_only_tombstones(schema):
    disk = SimulatedDisk(page_size=128)
    bool_rows = [(i, i) for i in range(20)]
    pref_rows = [(float(i), float(i)) for i in range(20)]
    relation = Relation(schema, bool_rows, pref_rows, disk=disk)
    for tid in range(20):
        relation.tombstone(tid)
    counters = IOCounters()
    assert list(relation.scan(counters, BTABLE)) == []
    # Liveness is a row property; the pages are still transferred.
    assert counters.get(BTABLE) == relation.heap_page_count()


# --------------------------------------------------------------------------- #
# heap repair (crash recovery support)
# --------------------------------------------------------------------------- #


def test_paged_count_tracks_appends(schema):
    relation = Relation(schema, [(1, 1)] * 3, [(0.0, 0.0)] * 3)
    assert relation.paged_count() == 3
    relation.append((2, 2), (0.5, 0.5))
    assert relation.paged_count() == 4
    assert relation.repair_heap() == 0  # nothing buffered


def test_repair_heap_pages_the_tail_after_an_interrupted_append(schema):
    from repro.storage.faults import (
        FaultPlan,
        FaultRule,
        FaultyDisk,
        SimulatedCrash,
    )

    disk = FaultyDisk(SimulatedDisk(page_size=128))
    bool_rows = [(i, i) for i in range(4)]
    pref_rows = [(float(i), float(i)) for i in range(4)]
    relation = Relation(schema, bool_rows, pref_rows, disk=disk)
    rows_per_page = relation.rows_per_page
    # Fill the open page, then crash on the allocation of the next one.
    disk.plan = FaultPlan([FaultRule(kind="crash", op="allocate", tag="heap")])
    while len(relation) % rows_per_page != 0:
        relation.append((9, 9), (0.9, 0.9))
    with pytest.raises(SimulatedCrash):
        relation.append((7, 7), (0.7, 0.7))
    disk.plan = FaultPlan()
    # The row landed in memory but never reached a heap page.
    assert len(relation) == relation.paged_count() + 1
    assert relation.repair_heap() == 1
    assert relation.paged_count() == len(relation)
    assert list(relation.scan()) == list(range(len(relation)))
    assert relation.bool_row(len(relation) - 1) == (7, 7)
