"""Cells, cuboids and the lattice."""

import pytest

from repro.cube.cuboid import Cell, Cuboid, atomic_cuboids, cuboid_lattice
from repro.cube.relation import Relation
from repro.cube.schema import Schema


@pytest.fixture
def relation():
    schema = Schema(("A", "B", "C"), ("X",))
    bool_rows = [
        ("a1", "b1", "c1"),
        ("a1", "b2", "c1"),
        ("a2", "b1", "c2"),
        ("a1", "b1", "c2"),
    ]
    pref_rows = [(0.1,), (0.2,), (0.3,), (0.4,)]
    return Relation(schema, bool_rows, pref_rows)


def test_cell_id_canonical():
    cell = Cell(("A", "B"), ("a1", "b2"))
    assert cell.cell_id == "A=a1&B=b2"
    assert str(cell) == "A=a1&B=b2"


def test_cell_validation():
    with pytest.raises(ValueError):
        Cell(("A", "B"), ("a1",))
    with pytest.raises(ValueError):
        Cell(("A", "A"), ("a1", "a2"))


def test_cell_matches(relation):
    cell = Cell(("A", "B"), ("a1", "b1"))
    assert cell.matches(relation, 0)
    assert not cell.matches(relation, 1)
    assert cell.matches(relation, 3)


def test_cell_atoms():
    cell = Cell(("A", "B"), ("a1", "b2"))
    assert cell.atoms() == (Cell(("A",), ("a1",)), Cell(("B",), ("b2",)))


def test_cells_hashable_and_equal():
    assert Cell(("A",), ("a1",)) == Cell(("A",), ("a1",))
    assert len({Cell(("A",), ("a1",)), Cell(("A",), ("a1",))}) == 1


def test_cuboid_group(relation):
    groups = Cuboid(("A",)).group(relation)
    assert groups[Cell(("A",), ("a1",))] == [0, 1, 3]
    assert groups[Cell(("A",), ("a2",))] == [2]


def test_cuboid_group_multi_dim(relation):
    groups = Cuboid(("A", "B")).group(relation)
    assert groups[Cell(("A", "B"), ("a1", "b1"))] == [0, 3]
    assert len(groups) == 3


def test_cuboid_cell_for(relation):
    cuboid = Cuboid(("B", "C"))
    assert cuboid.cell_for(relation, 2) == Cell(("B", "C"), ("b1", "c2"))


def test_cuboid_duplicate_dim_rejected():
    with pytest.raises(ValueError):
        Cuboid(("A", "A"))


def test_atomic_cuboids():
    cuboids = atomic_cuboids(("A", "B", "C"))
    assert [c.dims for c in cuboids] == [("A",), ("B",), ("C",)]


def test_cuboid_lattice_counts():
    full = list(cuboid_lattice(("A", "B", "C")))
    assert len(full) == 7  # 2^3 - 1 non-empty subsets
    limited = list(cuboid_lattice(("A", "B", "C"), max_dims=2))
    assert len(limited) == 6
    assert all(len(c.dims) <= 2 for c in limited)


def test_cuboid_name():
    assert Cuboid(("A", "B")).name == "(A,B)"
