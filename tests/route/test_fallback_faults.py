"""Fallback-chain fault tests: every edge fires, every counter reconciles.

Composes the PR-1 fault plans (deterministic per-tag storage faults) and
the PR-5 chaos harness (seeded storms against the concurrent executor)
with the router's ordered fallback chain.  Each of the chain's three
fallback edge *kinds* is exercised at least once, deterministically:

* ``StrategyUnsupported`` — a shape the engine never serves (index-merge
  on a skyline; stale postings after maintenance);
* ``StorageFault`` — corrupt R-tree pages fail BBS, the chain degrades
  to the heap-scanning engines;
* ``StrategyTimeout`` — latency injection makes one attempt overrun its
  deadline *slice* while the overall budget still has room.

Every test reconciles the router's tallies exactly against the observed
results: ``routed == cache_hits + sum(served_by)``, ``fell_back`` counts
fallen-back queries, ``fallback_edges`` names each failed->next edge,
and the error-class counters match the edge census.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.data.synthetic import generate_relation
from repro.data.workload import sample_linear_function, sample_predicate
from repro.query.session import QuerySession
from repro.route import (
    ENGINES,
    FallbackExecutor,
    QueryRouter,
    RouteRequest,
    RoutingPolicy,
    StrategyTimeout,
    StrategyUnsupported,
)
from repro.serve.executor import (
    QueryCancelled,
    QueryExecutor,
    QueryShed,
    QueryTimeout,
)
from repro.storage.disk import SimulatedDisk
from repro.storage.errors import StorageFault
from repro.storage.faults import FaultPlan, FaultRule, FaultyDisk
from repro.system import build_system

pytestmark = [pytest.mark.faults, pytest.mark.routing]

TYPED_ERRORS = (QueryShed, QueryTimeout, QueryCancelled, StorageFault)


@pytest.fixture
def faulty(small_config):
    """A routed-ready system over a fault-injecting disk (armed later)."""
    disk = FaultyDisk(SimulatedDisk())
    system = build_system(
        generate_relation(small_config, disk=disk), fanout=8
    )
    system.enable_epochs()
    return disk, system


def _session(system):
    return QuerySession.for_snapshot(system.pin_snapshot())


def _reference(system, predicate):
    """Fault-free ground truth via the naive engine on a clean chain."""
    router = QueryRouter.for_system(
        system, policy=RoutingPolicy(forced="naive", cache=False)
    )
    return router.route(_session(system), "skyline", predicate=predicate)


def test_unsupported_edge_index_merge_to_naive(faulty):
    """Edge 1: ``StrategyUnsupported`` — index-merge never serves skylines.

    The router's ``chain_for`` filters this statically, so the runtime
    raise is exercised through the executor directly (an unfiltered
    chain), exactly as a mis-stated forced chain would reach it.
    """
    _, system = faulty
    predicate = sample_predicate(system.relation, 1, random.Random(3))
    expected = _reference(system, predicate)

    executor = FallbackExecutor(ENGINES)
    router = QueryRouter.for_system(system, policy=RoutingPolicy(cache=False))
    result, failures = executor.execute(
        ["index-merge", "naive"],
        _session(system),
        RouteRequest(kind="skyline", predicate=predicate),
        router.ctx,
    )
    assert len(failures) == 1
    name, error = failures[0]
    assert name == "index-merge"
    assert isinstance(error, StrategyUnsupported)
    assert result.stats.route == "naive"
    assert result.stats.fallbacks == 1
    assert sorted(result.tids) == sorted(expected.tids)


def test_unsupported_edge_stale_postings(faulty):
    """Edge 1b: maintenance after the index build makes postings stale —
    index-merge refuses (never silently loses rows) and falls through."""
    _, system = faulty
    rng = random.Random(5)
    predicate = sample_predicate(system.relation, 1, rng)
    fn = sample_linear_function(system.relation.schema.n_preference, rng)

    schema = system.relation.schema
    system.insert(
        tuple(0 for _ in range(schema.n_boolean)),
        tuple(0.5 for _ in range(schema.n_preference)),
    )
    session = _session(system)
    assert len(session.relation) > system.indexes_rows

    executor = FallbackExecutor(ENGINES)
    router = QueryRouter.for_system(system, policy=RoutingPolicy(cache=False))
    result, failures = executor.execute(
        ["index-merge", "naive"],
        session,
        RouteRequest(kind="topk", predicate=predicate, fn=fn, k=5),
        router.ctx,
    )
    assert isinstance(failures[0][1], StrategyUnsupported)
    assert "cover" in failures[0][1].reason
    assert result.stats.route == "naive"

    # And the full router never offers index-merge for this snapshot.
    chain = router.chain_for("topk", predicate, None, session.relation)
    assert "index-merge" not in chain


def test_storage_fault_edge_domination_to_naive(faulty):
    """Edge 2: ``StorageFault`` — corrupt R-tree pages fail BBS; the heap
    scan answers; the edge and error class land in the router's tallies."""
    disk, system = faulty
    predicate = sample_predicate(system.relation, 1, random.Random(7))
    expected = _reference(system, predicate)

    disk.plan = FaultPlan(
        [FaultRule(kind="corrupt", tag="rtree", count=None)]
    )
    router = QueryRouter.for_system(
        system,
        policy=RoutingPolicy(
            forced_chain=("domination-first", "naive"), cache=False
        ),
    )
    result = router.route(_session(system), "skyline", predicate=predicate)
    assert result.stats.route == "naive"
    assert result.stats.fallbacks == 1
    assert sorted(result.tids) == sorted(expected.tids)

    stats = router.stats.snapshot()
    assert stats["routed"] == 1
    assert stats["fell_back"] == 1
    assert stats["fallback_edges"] == {"domination-first->naive": 1}
    assert stats["strategy_faults"] == 1
    assert stats["unsupported"] == 0
    assert stats["strategy_timeouts"] == 0
    disk.plan = FaultPlan()


def test_storage_fault_two_hop_chain(faulty):
    """A chain can degrade twice: both R-tree engines fault, naive serves,
    and both edges are tallied with exact reconciliation."""
    disk, system = faulty
    predicate = sample_predicate(system.relation, 1, random.Random(11))
    expected = _reference(system, predicate)

    disk.plan = FaultPlan(
        [FaultRule(kind="corrupt", tag="rtree", count=None)]
    )
    router = QueryRouter.for_system(
        system,
        policy=RoutingPolicy(
            forced_chain=("signature", "domination-first", "naive"),
            cache=False,
        ),
    )
    result = router.route(_session(system), "skyline", predicate=predicate)
    assert result.stats.route == "naive"
    assert result.stats.fallbacks == 2
    assert sorted(result.tids) == sorted(expected.tids)

    stats = router.stats.snapshot()
    assert stats["fallback_edges"] == {
        "signature->domination-first": 1,
        "domination-first->naive": 1,
    }
    assert stats["strategy_faults"] == 2
    assert stats["routed"] == sum(stats["served_by"].values())
    disk.plan = FaultPlan()


def test_timeout_edge_slice_expires_overall_survives(faulty):
    """Edge 3: ``StrategyTimeout`` — latency injection on R-tree reads
    makes the first attempt overrun its *slice* while the overall budget
    survives, so naive still answers inside the deadline."""
    disk, system = faulty
    predicate = sample_predicate(system.relation, 1, random.Random(13))
    expected = _reference(system, predicate)

    disk.plan = FaultPlan(
        [FaultRule(kind="slow", tag="rtree", delay=0.05, count=None)]
    )
    router = QueryRouter.for_system(
        system,
        policy=RoutingPolicy(
            forced_chain=("domination-first", "naive"), cache=False
        ),
    )
    session = QuerySession.for_snapshot(
        system.pin_snapshot(),
        deadline_at=time.perf_counter() + 0.4,
    )
    result = router.route(session, "skyline", predicate=predicate)
    assert result.stats.route == "naive"
    assert result.stats.fallbacks == 1
    assert sorted(result.tids) == sorted(expected.tids)

    stats = router.stats.snapshot()
    assert stats["strategy_timeouts"] == 1
    assert stats["fallback_edges"] == {"domination-first->naive": 1}
    disk.plan = FaultPlan()


def test_overall_deadline_is_never_swallowed(faulty):
    """A lapsed *overall* deadline aborts with ``QueryTimeout`` exactly as
    it would unrouted — the chain must not convert it into a fallback."""
    _, system = faulty
    predicate = sample_predicate(system.relation, 1, random.Random(17))
    router = QueryRouter.for_system(system, policy=RoutingPolicy(cache=False))
    session = QuerySession.for_snapshot(
        system.pin_snapshot(),
        deadline_at=time.perf_counter() - 1.0,  # already lapsed
    )
    with pytest.raises(QueryTimeout):
        router.route(session, "skyline", predicate=predicate)


def test_chaos_storm_routed_executor_reconciles(faulty, rng):
    """The composed storm: transient faults, corruption and latency spikes
    against a *routed* executor.  Every ticket resolves exact-or-typed
    (the chaos contract), and afterwards the serving counters reconcile
    exactly: every completed query was routed, every routed query has
    exactly one cache outcome, and the router's own invariant holds."""
    disk, system = faulty
    relation = system.relation
    dims = relation.schema.n_preference
    workload = []
    for index in range(24):
        predicate = sample_predicate(relation, 1 + index % 2, rng)
        if index % 3 == 1:
            workload.append(
                (
                    "topk",
                    {
                        "fn": sample_linear_function(dims, rng),
                        "k": 10,
                        "predicate": predicate,
                    },
                )
            )
        else:
            workload.append(("skyline", {"predicate": predicate}))
    serial = [
        getattr(system.engine, kind)(**kwargs) for kind, kwargs in workload
    ]

    disk.plan = FaultPlan(
        [
            FaultRule(kind="transient", tag="rtree", probability=0.2, count=12),
            FaultRule(
                kind="transient",
                tag=f"{system.pcube.tag}:sig",
                probability=0.2,
                count=12,
            ),
            FaultRule(kind="slow", probability=0.05, count=10, delay=0.002),
        ],
        seed=20080401,
    )
    with QueryExecutor(
        system, threads=3, queue_depth=64, routing=True
    ) as executor:
        tickets = [
            getattr(executor, kind)(**kwargs) for kind, kwargs in workload
        ]
        completed = 0
        for index, ticket in enumerate(tickets):
            try:
                result = ticket.result(timeout=60.0)
            except TYPED_ERRORS:
                continue
            reference = serial[index]
            assert sorted(result.tids) == sorted(reference.tids)
            if result.scores is not None:
                assert sorted(
                    round(s, 9) for s in result.scores
                ) == sorted(round(s, 9) for s in reference.scores)
            completed += 1
        serving = executor.stats.snapshot()
        router_view = executor.router.snapshot()["routing"]

    # Exact reconciliation between the three stat surfaces.
    assert serving["completed"] == completed
    assert serving["routed"] == completed
    assert (
        serving["cache_hits"]
        + serving["cache_misses"]
        + serving["cache_bypassed"]
        == serving["routed"]
    )
    assert serving["fell_back"] <= serving["routed"]
    assert router_view["routed"] == router_view["cache_hits"] + sum(
        router_view["served_by"].values()
    )
    assert sum(serving["routes"].values()) == serving["routed"]
    disk.plan = FaultPlan()
