"""FallbackExecutor unit behaviour: ordering, deadline slices, restoration."""

from __future__ import annotations

import time

import pytest

from repro.query.predicates import BooleanPredicate
from repro.query.session import QuerySession
from repro.route import (
    ENGINES,
    EngineContext,
    FallbackExecutor,
    RouteRequest,
    StrategyTimeout,
    StrategyUnsupported,
)
from repro.serve.executor import QueryCancelled
from repro.storage.errors import TransientIOError
from repro.system import build_system

pytestmark = pytest.mark.routing


@pytest.fixture
def harness(small_relation):
    system = build_system(small_relation, fanout=8)
    system.enable_epochs()
    session = QuerySession.for_snapshot(system.pin_snapshot())
    request = RouteRequest(kind="skyline", predicate=BooleanPredicate())
    ctx = EngineContext(
        indexes=system.indexes, indexes_rows=system.indexes_rows
    )
    return session, request, ctx


def test_empty_chain_raises_unsupported(harness):
    session, request, ctx = harness
    with pytest.raises(StrategyUnsupported, match="no engine supports"):
        FallbackExecutor(ENGINES).execute([], session, request, ctx)


def test_exhausted_chain_reraises_last_error(harness):
    session, request, ctx = harness

    def boom(session, request, ctx):
        raise TransientIOError(1, "rtree")

    executor = FallbackExecutor({"a": boom, "b": boom})
    with pytest.raises(TransientIOError):
        executor.execute(["a", "b"], session, request, ctx)


def test_failures_list_preserves_chain_order(harness):
    session, request, ctx = harness

    def unsupported(session, request, ctx):
        raise StrategyUnsupported("a", "nope")

    def faulting(session, request, ctx):
        raise TransientIOError(2, "rtree")

    executor = FallbackExecutor(
        {"a": unsupported, "b": faulting, "naive": ENGINES["naive"]}
    )
    result, failures = executor.execute(
        ["a", "b", "naive"], session, request, ctx
    )
    assert [name for name, _ in failures] == ["a", "b"]
    assert isinstance(failures[0][1], StrategyUnsupported)
    assert isinstance(failures[1][1], TransientIOError)
    assert result.stats.route == "naive"
    assert result.stats.fallbacks == 2


def test_cancellation_is_never_swallowed(harness):
    session, request, ctx = harness

    def cancel():
        raise QueryCancelled("caller gave up")

    session.ticker = cancel
    with pytest.raises(QueryCancelled):
        FallbackExecutor(ENGINES).execute(
            ["naive"], session, request, ctx
        )
    # The original ticker is restored even on the abort path.
    assert session.ticker is cancel


def test_ticker_restored_after_success(harness):
    session, request, ctx = harness
    ticks = []
    session.ticker = lambda: ticks.append(1)
    base = session.ticker
    result, failures = FallbackExecutor(ENGINES).execute(
        ["naive"], session, request, ctx
    )
    assert failures == []
    assert session.ticker is base
    assert ticks  # the engine really ran through the composed ticker


def test_slice_expiry_raises_strategy_timeout_and_chain_continues(harness):
    """With two engines and an overall budget, the first attempt's slice
    is ``remaining / 2``.  An attempt that ticks inside its slice is
    fine; once the slice lapses the *composed ticker* raises
    StrategyTimeout (not QueryTimeout), and the last engine still runs
    with the full remaining budget."""
    session, request, ctx = harness
    session.deadline_at = time.perf_counter() + 0.4  # slice ≈ 0.2s

    def slow(inner_session, request, ctx):
        inner_session.ticker()  # inside the slice: must not raise
        time.sleep(0.25)  # outrun the ~0.2s slice, not the 0.4s budget
        inner_session.ticker()  # now the composed ticker raises
        raise AssertionError("slice expiry did not fire")

    executor = FallbackExecutor({"slow": slow, "naive": ENGINES["naive"]})
    result, failures = executor.execute(
        ["slow", "naive"], session, request, ctx
    )
    assert [name for name, _ in failures] == ["slow"]
    assert isinstance(failures[0][1], StrategyTimeout)
    assert result.stats.route == "naive"
    # The overall deadline was never consumed by the slice mechanism.
    assert session.deadline_at > time.perf_counter() - 0.4
