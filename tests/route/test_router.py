"""QueryRouter unit behaviour: chains, priors, learning, bypass, stats."""

from __future__ import annotations

import pytest

from repro.query.predicates import BooleanPredicate
from repro.query.session import QuerySession
from repro.route import (
    NAIVE,
    STRATEGY_ORDER,
    CostBook,
    PredicateStats,
    QueryRouter,
    RouterStats,
    RoutingPolicy,
    StrategyTimeout,
    StrategyUnsupported,
    candidate_bucket,
)
from repro.serve.resilience import BreakerBoard
from repro.storage.errors import TransientIOError
from repro.system import build_system

pytestmark = pytest.mark.routing


@pytest.fixture
def routed(small_relation):
    system = build_system(small_relation, fanout=8)
    system.enable_epochs()
    return system


def _session(system):
    return QuerySession.for_snapshot(system.pin_snapshot())


def _predicate(relation, n=1):
    dims = relation.schema.boolean_dims[:n]
    return BooleanPredicate(
        {dim: relation.bool_value(0, dim) for dim in dims}
    )


# -- policy validation --------------------------------------------------- #


def test_unknown_forced_strategy_rejected(routed):
    with pytest.raises(ValueError, match="unknown strategy"):
        QueryRouter.for_system(routed, policy=RoutingPolicy(forced="grep"))


def test_unknown_forced_chain_member_rejected(routed):
    with pytest.raises(ValueError, match="unknown strategy"):
        QueryRouter.for_system(
            routed, policy=RoutingPolicy(forced_chain=("naive", "bogus"))
        )


# -- chain construction -------------------------------------------------- #


def test_chain_always_ends_with_naive(routed):
    router = QueryRouter.for_system(routed)
    for kind in ("skyline", "topk"):
        chain = router.chain_for(
            kind, _predicate(routed.relation), None, routed.relation
        )
        assert chain[-1] == NAIVE
        assert len(set(chain)) == len(chain)


def test_forced_chain_is_supports_filtered(routed):
    router = QueryRouter.for_system(
        routed, policy=RoutingPolicy(forced_chain=("index-merge", "naive"))
    )
    # index-merge never serves skylines: filtered out, order preserved.
    assert router.chain_for(
        "skyline", BooleanPredicate(), None, routed.relation
    ) == ["naive"]
    assert router.chain_for(
        "topk", BooleanPredicate(), None, routed.relation
    ) == ["index-merge", "naive"]


def test_domination_excluded_for_preference_subspace(routed):
    router = QueryRouter.for_system(routed)
    subspace = (routed.relation.schema.preference_dims[0],)
    chain = router.chain_for(
        "skyline", BooleanPredicate(), subspace, routed.relation
    )
    assert "domination-first" not in chain
    assert chain[-1] == NAIVE


def test_priors_empty_predicate_ties_domination_to_signature(routed):
    router = QueryRouter.for_system(routed)
    rows = len(routed.relation)
    empty = router._priors(BooleanPredicate(), float(rows), routed.relation)
    assert empty["domination-first"] == empty["signature"]
    selective = router._priors(
        _predicate(routed.relation), 5.0, routed.relation
    )
    # Non-empty predicate: minimal probing scales with the relation.
    assert selective["domination-first"] > selective["signature"]
    assert selective["boolean-first"] < selective["naive"]


def test_cost_book_observations_reorder_the_chain(routed):
    """A strategy observed to be far cheaper moves to the chain's head."""
    router = QueryRouter.for_system(routed)
    predicate = _predicate(routed.relation)
    estimate = router.predicate_stats.cardinality(predicate)
    bucket = candidate_bucket(estimate)
    baseline = router.chain_for(
        "skyline", predicate, None, routed.relation
    )
    # Teach the book that whatever ranked last (before naive) is free.
    slowest = baseline[-2]
    router.costs.observe("skyline", slowest, bucket, 0.0)
    for name in baseline[:-2]:
        router.costs.observe("skyline", name, bucket, 1e6)
    relearned = router.chain_for(
        "skyline", predicate, None, routed.relation
    )
    assert relearned[0] == slowest
    assert relearned[-1] == NAIVE


# -- statistics ---------------------------------------------------------- #


def test_predicate_stats_refresh_once_per_epoch(routed):
    router = QueryRouter.for_system(routed)
    session = _session(routed)
    predicate = _predicate(routed.relation)
    router.route(session, "skyline", predicate=predicate)
    router.route(session, "skyline", predicate=predicate)
    assert router.predicate_stats.refreshes == 1
    assert router.predicate_stats.rows == len(routed.relation)


def test_predicate_stats_exact_for_one_conjunct(routed):
    stats = PredicateStats()
    stats.ensure(routed.relation, epoch=None)
    relation = routed.relation
    dim = relation.schema.boolean_dims[0]
    value = relation.bool_value(0, dim)
    exact = sum(
        1 for tid in relation.tids() if relation.bool_value(tid, dim) == value
    )
    predicate = BooleanPredicate({dim: value})
    assert stats.cardinality(predicate) == exact
    assert stats.value_count(dim, value) == exact


def test_candidate_bucket_log2():
    assert candidate_bucket(0.0) == 0
    assert candidate_bucket(1.0) == 0
    assert candidate_bucket(2.0) == 1
    assert candidate_bucket(1000.0) == 9


def test_cost_book_ewma_and_nearest_bucket():
    book = CostBook(alpha=0.5)
    book.observe("skyline", "signature", 4, 100.0)
    book.observe("skyline", "signature", 4, 200.0)
    assert book.estimate("skyline", "signature", 4) == 150.0
    # Unseen bucket: nearest same-(kind, strategy) bucket generalises.
    assert book.estimate("skyline", "signature", 9) == 150.0
    assert book.estimate("topk", "signature", 4) is None
    with pytest.raises(ValueError):
        CostBook(alpha=0.0)


def test_router_stats_error_classification():
    stats = RouterStats()
    chain = ["signature", "domination-first", "naive"]
    stats.note_served(
        chain,
        "naive",
        [
            ("signature", StrategyUnsupported("signature", "test")),
            ("domination-first", TransientIOError(3, "rtree")),
        ],
        "miss",
    )
    stats.note_served(chain, "signature", [], "miss")
    stats.note_hit()
    view = stats.snapshot()
    assert view["routed"] == 3
    assert view["fell_back"] == 1
    assert view["unsupported"] == 1
    assert view["strategy_faults"] == 1
    assert view["strategy_timeouts"] == 0
    assert view["fallback_edges"] == {
        "signature->domination-first": 1,
        "domination-first->naive": 1,
    }
    assert view["routed"] == view["cache_hits"] + sum(
        view["served_by"].values()
    )


def test_router_stats_timeout_classification():
    stats = RouterStats()
    stats.note_served(
        ["signature", "naive"],
        "naive",
        [("signature", StrategyTimeout("signature"))],
        None,
    )
    assert stats.snapshot()["strategy_timeouts"] == 1


# -- breaker bypass ------------------------------------------------------ #


def test_open_breaker_bypasses_the_cache(routed):
    breakers = BreakerBoard(threshold=1)
    router = QueryRouter.for_system(routed, breakers=breakers)
    session = _session(routed)
    predicate = _predicate(routed.relation)

    warm = router.route(session, "skyline", predicate=predicate)
    assert warm.stats.cache_outcome == "miss"
    assert (
        router.route(session, "skyline", predicate=predicate)
        .stats.cache_outcome
        == "hit"
    )

    # Trip a breaker on the predicate's cell: lookups are bypassed, the
    # real path runs, and the answer stays byte-identical.
    cell_id = next(iter(predicate.atomic_cells())).cell_id
    breakers.record_failure(cell_id, 0, epoch=session.epoch)
    bypassed = router.route(session, "skyline", predicate=predicate)
    assert bypassed.stats.cache_outcome == "bypass"
    assert bypassed.tids == warm.tids
    assert router.cache.snapshot()["bypassed"] == 1

    # Unrelated predicates still enjoy the cache.
    other = BooleanPredicate()
    router.route(session, "skyline", predicate=other)
    assert (
        router.route(session, "skyline", predicate=other)
        .stats.cache_outcome
        == "hit"
    )


# -- live sessions ------------------------------------------------------- #


def test_live_sessions_are_never_cached(small_relation):
    system = build_system(small_relation, fanout=8)  # no epochs
    router = QueryRouter.for_system(system)
    session = QuerySession(system.relation, system.rtree, system.pcube)
    predicate = _predicate(system.relation)
    first = router.route(session, "skyline", predicate=predicate)
    second = router.route(session, "skyline", predicate=predicate)
    assert first.stats.cache_outcome is None
    assert second.stats.cache_outcome is None
    assert len(router.cache) == 0
    assert first.tids == second.tids


# -- snapshot shape ------------------------------------------------------ #


def test_snapshot_structure(routed):
    router = QueryRouter.for_system(routed)
    session = _session(routed)
    router.route(session, "skyline", predicate=_predicate(routed.relation))
    view = router.snapshot()
    assert set(view) == {
        "policy",
        "routing",
        "cache",
        "predicate_stats",
        "costs",
    }
    assert view["routing"]["routed"] == 1
    assert view["cache"]["stores"] == 1
    assert view["predicate_stats"]["rows"] == len(routed.relation)
    assert STRATEGY_ORDER[-1] == NAIVE
