"""ResultCache unit behaviour: keys, LRU, invalidation, signature memo."""

from __future__ import annotations

import pytest

from repro.query.predicates import BooleanPredicate
from repro.query.ranking import LinearFunction
from repro.route import APEX, CachedAnswer, ResultCache, result_key

pytestmark = pytest.mark.routing


def _answer(tids=(1, 2), scores=None, strategy="naive"):
    return CachedAnswer(
        tids=tuple(tids), scores=scores, strategy=strategy, tier=None
    )


def test_key_embeds_epoch_kind_cell_and_digest():
    predicate = BooleanPredicate({"A": 1})
    key = result_key("skyline", predicate, None, None, None, epoch=7)
    assert key[0] == 7
    assert key[1] == "skyline"
    assert key[2] == predicate.cell().cell_id
    assert key[3] == "*"

    apex = result_key("skyline", BooleanPredicate(), None, None, None, 7)
    assert apex[2] == APEX

    subspace = result_key(
        "skyline", predicate, ("X", "Y"), None, None, 7
    )
    assert subspace[3] == "X,Y"


def test_key_distinguishes_fn_and_k():
    predicate = BooleanPredicate({"A": 1})
    base = result_key(
        "topk", predicate, None, LinearFunction((1.0, 2.0)), 5, 7
    )
    other_fn = result_key(
        "topk", predicate, None, LinearFunction((2.0, 1.0)), 5, 7
    )
    other_k = result_key(
        "topk", predicate, None, LinearFunction((1.0, 2.0)), 6, 7
    )
    assert len({base, other_fn, other_k}) == 3


def test_key_distinguishes_epochs():
    predicate = BooleanPredicate({"A": 1})
    old = result_key("skyline", predicate, None, None, None, 7)
    new = result_key("skyline", predicate, None, None, None, 8)
    assert old != new


def test_get_put_and_counters():
    cache = ResultCache(capacity=4)
    key = ("k",)
    assert cache.get(key) is None
    cache.put(key, _answer())
    hit = cache.get(key)
    assert hit is not None and hit.tids == (1, 2)
    view = cache.snapshot()
    assert view["hits"] == 1
    assert view["misses"] == 1
    assert view["stores"] == 1
    assert len(cache) == 1


def test_lru_eviction_prefers_recently_used():
    cache = ResultCache(capacity=2)
    cache.put(("a",), _answer())
    cache.put(("b",), _answer())
    cache.get(("a",))  # refresh "a": "b" becomes the LRU victim
    cache.put(("c",), _answer())
    assert cache.get(("a",)) is not None
    assert cache.get(("b",)) is None
    assert cache.snapshot()["evicted"] == 1


def test_on_epoch_drops_only_dead_epochs():
    cache = ResultCache()
    cache.put((3, "skyline"), _answer())
    cache.put((4, "skyline"), _answer())
    cache.put((5, "skyline"), _answer())
    dropped = cache.on_epoch(5)
    assert dropped == 2
    assert cache.get((5, "skyline")) is not None
    assert cache.get((3, "skyline")) is None
    assert cache.snapshot()["invalidated"] == 2
    assert cache.on_epoch(5) == 0  # idempotent at the same epoch


def test_signature_memo_epoch_keyed():
    cache = ResultCache(signature_capacity=2)
    cells = ("c1", "c2")
    assert cache.get_signature(cells, epoch=3) is None
    cache.put_signature(cells, 3, "sig-object")
    assert cache.get_signature(cells, 3) == "sig-object"
    assert cache.get_signature(cells, 4) is None  # epoch mismatch
    cache.on_epoch(4)
    assert cache.get_signature(cells, 3) is None  # reclaimed
    view = cache.snapshot()
    assert view["signature_hits"] == 1
    assert view["signature_misses"] == 3


def test_signature_memo_disabled_at_zero_capacity():
    cache = ResultCache(signature_capacity=0)
    cache.put_signature(("c",), 1, "sig")
    assert cache.get_signature(("c",), 1) is None
    assert cache.snapshot()["signature_entries"] == 0


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        ResultCache(capacity=0)
    with pytest.raises(ValueError):
        ResultCache(signature_capacity=-1)
