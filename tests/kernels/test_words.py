"""Word-level interop: BitArray ↔ packed uint64 words ↔ sigops.

The signature algebra kernels work on 64-bit words; these tests pin the
contract that ``to_words``/``from_words`` is a lossless round trip, that
``pack_words``/``unpack_words`` agree with it byte-for-byte, and that the
word-parallel sigops reproduce the scalar BitArray operators exactly.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitmap.bitarray import (
    BitArray,
    WORD_BITS,
    pack_words,
    unpack_words,
    word_count,
)
from repro.kernels.sigops import (
    and_masks,
    bitarray_words,
    or_masks,
    popcount_bitarrays,
    popcount_masks,
    words_to_bitarray,
)

pytestmark = pytest.mark.kernels

bit_arrays = st.integers(min_value=1, max_value=300).flatmap(
    lambda nbits: st.builds(
        BitArray,
        st.just(nbits),
        st.integers(min_value=0, max_value=(1 << nbits) - 1),
    )
)


@given(bit_arrays)
def test_to_from_words_roundtrip(bits):
    words = bits.to_words()
    assert len(words) == word_count(bits.nbits)
    assert all(0 <= w < (1 << WORD_BITS) for w in words)
    back = BitArray.from_words(bits.nbits, words)
    assert back == bits
    assert back.mask == bits.mask


@given(bit_arrays)
def test_words_match_bytes(bits):
    """Packing the word tuple is ``to_bytes`` zero-padded to full words
    (``to_bytes`` is minimal-width, ``pack_words`` is word-aligned)."""
    padded = bits.to_bytes().ljust(
        word_count(bits.nbits) * (WORD_BITS // 8), b"\x00"
    )
    assert pack_words(bits.to_words(), WORD_BITS // 8) == padded


@given(
    st.lists(
        st.integers(min_value=0, max_value=(1 << WORD_BITS) - 1),
        min_size=0,
        max_size=8,
    )
)
def test_pack_unpack_words_roundtrip(words):
    packed = pack_words(words, WORD_BITS // 8)
    assert len(packed) == len(words) * (WORD_BITS // 8)
    assert unpack_words(packed, WORD_BITS // 8) == list(words)


@given(bit_arrays)
def test_sigops_bitarray_words_roundtrip(bits):
    assert words_to_bitarray(bitarray_words(bits), bits.nbits) == bits


@given(st.data())
def test_sigops_match_scalar_operators(data):
    nbits = data.draw(st.integers(min_value=1, max_value=200))
    masks = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << nbits) - 1),
            min_size=1,
            max_size=6,
        )
    )
    arrays = [BitArray(nbits, mask) for mask in masks]
    expected_or = arrays[0]
    expected_and = arrays[0]
    for bits in arrays[1:]:
        expected_or = expected_or | bits
        expected_and = expected_and & bits
    assert or_masks(masks, nbits) == expected_or.mask
    assert and_masks(masks, nbits) == expected_and.mask
    assert popcount_masks(masks, nbits) == sum(
        bits.count() for bits in arrays
    )
    assert popcount_bitarrays(arrays) == sum(
        bits.count() for bits in arrays
    )
