"""Backend parity: every kernel must agree with its scalar reference
bit-for-bit.

Counted I/O depends on heap order, heap order depends on float keys, so
"close enough" is not enough — the numpy paths must reproduce Python's
left-fold float arithmetic exactly.  Coordinates are drawn both from
arbitrary finite floats and from a coarse grid (``i / 8``) that
manufactures the exact ties where ordering bugs would hide.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.backend import NUMPY, PYTHON, np, use_backend
from repro.kernels.dominate import (
    DominationBuffer,
    dominated_mask,
    prefix_dominated_mask,
)
from repro.kernels import mindist

pytestmark = [
    pytest.mark.kernels,
    pytest.mark.skipif(np is None, reason="parity needs the numpy backend"),
]

coords = st.one_of(
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, width=64
    ),
    # Tie-prone grid: duplicates and exact per-dimension equality.
    st.integers(min_value=0, max_value=8).map(lambda i: i / 8),
)


def point_blocks(min_dims=1, max_dims=4, max_rows=12):
    return st.integers(min_value=min_dims, max_value=max_dims).flatmap(
        lambda d: st.lists(
            st.tuples(*([coords] * d)), min_size=0, max_size=max_rows
        )
    )


def rect_blocks(max_dims=4, max_rows=10):
    def to_rects(rows):
        lows = [
            tuple(min(a, b) for a, b in zip(lo, hi)) for lo, hi in rows
        ]
        highs = [
            tuple(max(a, b) for a, b in zip(lo, hi)) for lo, hi in rows
        ]
        return lows, highs

    return st.integers(min_value=1, max_value=max_dims).flatmap(
        lambda d: st.tuples(
            st.lists(
                st.tuples(
                    st.tuples(*([coords] * d)),
                    st.tuples(*([coords] * d)),
                ),
                min_size=0,
                max_size=max_rows,
            ).map(to_rects),
            st.tuples(*([coords] * d)),
        )
    )


def both_backends(fn):
    with use_backend(PYTHON):
        scalar = fn()
    with use_backend(NUMPY):
        vector = fn()
    return scalar, vector


# --------------------------------------------------------------------------- #
# mindist kernels
# --------------------------------------------------------------------------- #


@given(point_blocks())
def test_sum_block_parity(rows):
    scalar, vector = both_backends(lambda: mindist.sum_block(rows))
    assert scalar == vector
    assert all(isinstance(v, float) for v in vector)


@given(point_blocks())
def test_linear_score_parity(rows):
    dims = len(rows[0]) if rows else 2
    weights = tuple((-1.0) ** d * (d + 1) / 4 for d in range(dims))
    scalar, vector = both_backends(
        lambda: mindist.linear_score_block(weights, rows)
    )
    assert scalar == vector


@given(rect_blocks())
def test_linear_lower_bound_parity(block):
    (lows, highs), point = block
    weights = tuple(
        (-1.0) ** d * (d + 1) / 4 for d in range(len(point))
    )
    scalar, vector = both_backends(
        lambda: mindist.linear_lower_bound_block(weights, lows, highs)
    )
    assert scalar == vector


@given(rect_blocks())
def test_wsd_parity(block):
    (lows, highs), target = block
    weights = tuple((d + 1) / 8 for d in range(len(target)))
    scalar, vector = both_backends(
        lambda: mindist.wsd_score_block(weights, target, lows)
    )
    assert scalar == vector
    scalar, vector = both_backends(
        lambda: mindist.wsd_lower_bound_block(
            weights, target, lows, highs
        )
    )
    assert scalar == vector


@given(rect_blocks())
def test_separable_parity(block):
    (lows, highs), target = block
    terms = [
        (d, "linear" if d % 2 == 0 else "squared", (d + 1) / 4, t)
        for d, t in enumerate(target)
    ]
    scalar, vector = both_backends(
        lambda: mindist.separable_score_block(terms, lows)
    )
    assert scalar == vector
    scalar, vector = both_backends(
        lambda: mindist.separable_lower_bound_block(terms, lows, highs)
    )
    assert scalar == vector


@given(rect_blocks())
def test_mindist_and_transform_parity(block):
    (lows, highs), point = block
    scalar, vector = both_backends(
        lambda: mindist.mindist_block(lows, highs, point)
    )
    assert scalar == vector
    scalar, vector = both_backends(
        lambda: mindist.transform_points_block(lows, point)
    )
    assert scalar == vector
    scalar, vector = both_backends(
        lambda: mindist.transform_rect_lowers_block(lows, highs, point)
    )
    assert scalar == vector


def test_matrix_input_matches_tuple_input():
    """Columnar callers hand ndarrays; same bits must come out."""
    rows = [(0.125, 0.25, 0.5), (0.75, 0.125, 0.375), (0.5, 0.5, 0.5)]
    matrix = np.asarray(rows, dtype=np.float64)
    weights = (0.4, 0.35, 0.25)
    with use_backend(NUMPY):
        assert mindist.linear_score_block(
            weights, matrix
        ) == mindist.linear_score_block(weights, rows)
        assert mindist.sum_block(matrix) == mindist.sum_block(rows)


# --------------------------------------------------------------------------- #
# domination kernels
# --------------------------------------------------------------------------- #


@settings(max_examples=60)
@given(point_blocks(min_dims=2, max_dims=3, max_rows=20), st.data())
def test_domination_buffer_parity(rows, data):
    if not rows:
        return
    dims = len(rows[0])
    split = data.draw(st.integers(min_value=0, max_value=len(rows)))
    buffered, probes = rows[:split], rows[split:]

    def run(use_numpy):
        buffer = DominationBuffer(
            dims, points=buffered, use_numpy=use_numpy
        )
        return (
            [buffer.dominates_point(p) for p in probes],
            buffer.dominates_block(probes),
            buffer.points(),
        )

    with use_backend(PYTHON):
        scalar = run(False)
    with use_backend(NUMPY):
        vector = run(True)
    assert scalar == vector


@settings(max_examples=60)
@given(point_blocks(min_dims=2, max_dims=3, max_rows=20), st.data())
def test_dominated_mask_parity(rows, data):
    # Repeated tids exercise the same-tid exclusion.
    tids = [
        data.draw(st.integers(min_value=0, max_value=5)) for _ in rows
    ]
    pairs = list(zip(tids, rows))
    scalar, vector = both_backends(lambda: dominated_mask(pairs))
    assert scalar == vector


@settings(max_examples=60)
@given(point_blocks(min_dims=2, max_dims=3, max_rows=20))
def test_prefix_dominated_mask_parity(rows):
    scalar, vector = both_backends(
        lambda: prefix_dominated_mask(rows)
    )
    assert scalar == vector


def test_buffer_escalation_covers_long_buffers():
    """Force several escalating chunks: a staircase none of whose steps
    dominate the probe except the very last buffered point."""
    staircase = [(float(i), float(2000 - i)) for i in range(2000)]
    probe = (1999.5, 1.5)  # only (1999, 1) dominates it
    for use_numpy in (False, True):
        buffer = DominationBuffer(
            2, points=staircase, use_numpy=use_numpy
        )
        assert buffer.dominates_point(probe) is True
        assert buffer.dominates_block([probe, (-1.0, -1.0)]) == [
            True,
            False,
        ]
