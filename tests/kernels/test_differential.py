"""Cross-backend differential run over every query engine.

One seeded system, one mixed workload, executed twice — once per
``REPRO_KERNELS`` backend — asserting byte-identical answers AND
identical :class:`QueryStats` accounting (counted I/O per category,
prune counters, peak heap).  This is the end-to-end version of the
kernel parity suite: if any call site lets the backends diverge in heap
order or access-path choice, the counted reads differ and this fails.

Marked ``kernels`` so CI can run it standalone under both values of the
environment switch.
"""

import pytest

from repro.baselines.boolean_first import (
    boolean_first_skyline,
    boolean_first_topk,
)
from repro.baselines.domination_first import (
    bbs_skyline,
    domination_first_skyline,
    ranking_topk,
)
from repro.baselines.index_merge import index_merge_topk
from repro.baselines.naive import naive_skyline, naive_topk
from repro.baselines.skyline_algs import (
    bnl_skyline,
    dnc_skyline,
    sfs_skyline,
)
from repro.data.fixtures import build_sweep_system
from repro.kernels.backend import NUMPY, PYTHON, np, use_backend
from repro.query.predicates import BooleanPredicate
from repro.query.ranking import (
    LinearFunction,
    WeightedSquaredDistance,
)

pytestmark = [
    pytest.mark.kernels,
    pytest.mark.skipif(
        np is None, reason="differential needs the numpy backend"
    ),
]


@pytest.fixture(scope="module")
def system():
    return build_sweep_system(4_000, n_preference=2, seed=31)


@pytest.fixture(scope="module")
def points(system):
    return list(system.relation.pref_points())


def _stats_facts(stats):
    return {
        "io": stats.counters.snapshot(),
        "dominance_pruned": stats.dominance_pruned,
        "boolean_pruned": stats.boolean_pruned,
        "peak_heap": stats.peak_heap,
        "verified": stats.verified,
        "results": stats.results,
    }


def _differential(run):
    """Run a workload under both backends; answers and stats must agree."""
    with use_backend(PYTHON):
        scalar_answer, scalar_stats = run()
    with use_backend(NUMPY):
        vector_answer, vector_stats = run()
    assert scalar_answer == vector_answer
    if scalar_stats is not None:
        assert _stats_facts(scalar_stats) == _stats_facts(vector_stats)
    assert scalar_stats is None or scalar_stats.kernel_backend == PYTHON
    assert vector_stats is None or vector_stats.kernel_backend == NUMPY
    return scalar_answer


def _predicates(system):
    dims = system.relation.schema.boolean_dims
    value = system.relation.bool_row(0)[0]
    return [
        BooleanPredicate(),
        BooleanPredicate({dims[0]: value}),
    ]


LINEAR = LinearFunction((0.55, 0.45))
WSD = WeightedSquaredDistance(target=(0.25, 0.75), weights=(1.0, 0.5))


def test_signature_engine_differential(system):
    for predicate in _predicates(system):
        result = _differential(
            lambda p=predicate: (
                lambda r: (r.tids, r.stats)
            )(system.engine.skyline(predicate=p))
        )
        assert result  # the sweep data always has a non-empty skyline
        _differential(
            lambda p=predicate: (
                lambda r: ((r.tids, r.scores), r.stats)
            )(system.engine.topk(LINEAR, 10, predicate=p))
        )
        _differential(
            lambda p=predicate: (
                lambda r: ((r.tids, r.scores), r.stats)
            )(system.engine.topk(WSD, 7, predicate=p))
        )
    _differential(
        lambda: (
            lambda r: (r.tids, r.stats)
        )(system.engine.dynamic_skyline((0.5, 0.5)))
    )
    _differential(
        lambda: (
            lambda r: (r.tids, r.stats)
        )(system.engine.lower_hull())
    )


def test_subspace_skyline_differential(system):
    name = system.relation.schema.preference_dims[0]
    _differential(
        lambda: (
            lambda r: (r.tids, r.stats)
        )(system.engine.skyline(preference_by=(name,)))
    )


def test_boolean_first_differential(system):
    indexes = system.indexes
    for predicate in _predicates(system):
        _differential(
            lambda p=predicate: boolean_first_skyline(
                system.relation, indexes, p
            )
        )
        _differential(
            lambda p=predicate: boolean_first_topk(
                system.relation, indexes, LINEAR, 10, p
            )
        )


def test_domination_first_differential(system):
    _differential(lambda: bbs_skyline(system.rtree))
    for predicate in _predicates(system):
        _differential(
            lambda p=predicate: domination_first_skyline(
                system.relation, system.rtree, p
            )[:2]
        )
        _differential(
            lambda p=predicate: ranking_topk(
                system.relation, system.rtree, LINEAR, 10, p
            )[:2]
        )


def test_index_merge_differential(system):
    for predicate in _predicates(system):
        _differential(
            lambda p=predicate: index_merge_topk(
                system.relation,
                system.rtree,
                system.indexes,
                LINEAR,
                10,
                p,
            )
        )


def test_memory_algorithms_differential(points):
    _differential(lambda: (naive_skyline(points), None))
    _differential(lambda: (sfs_skyline(points), None))
    _differential(lambda: (bnl_skyline(points), None))
    _differential(lambda: (dnc_skyline(points), None))
    _differential(lambda: (naive_topk(points, LINEAR, 10), None))
    # The three classic algorithms and the reference agree with each
    # other too (set-wise; output orders legitimately differ).
    with use_backend(NUMPY):
        reference = set(naive_skyline(points))
        assert set(sfs_skyline(points)) == reference
        assert set(bnl_skyline(points)) == reference
        assert set(dnc_skyline(points)) == reference
