"""Ablation: eager recursive intersection vs lazy AND assembly.

DESIGN.md design decision: the paper's recursive intersection (Fig. 3) is
exact and prunes maximally; a lazy AND view skips the up-front assembly but
admits internal-node false positives that cost extra block reads.  This
bench quantifies the trade on multi-predicate CoverType queries.
"""

import random

import pytest

from benchmarks.conftest import covertype_predicates, print_table
from repro.query.skyline import skyline_signature


@pytest.fixture(scope="module")
def assembly_comparison(covertype_system):
    system = covertype_system
    rng = random.Random(17)
    rows = []
    for trial in range(4):
        chain = covertype_predicates(system, rng)
        for predicate in chain[1:]:
            lazy_tids, lazy_stats, _ = skyline_signature(
                system.relation,
                system.rtree,
                system.pcube,
                predicate,
                eager_assembly=False,
            )
            eager_tids, eager_stats, _ = skyline_signature(
                system.relation,
                system.rtree,
                system.pcube,
                predicate,
                eager_assembly=True,
            )
            assert set(lazy_tids) == set(eager_tids)
            rows.append((len(predicate), lazy_stats, eager_stats))
    return rows


def test_ablation_lazy_vs_eager_assembly(assembly_comparison, covertype_system, benchmark):
    table = []
    for n_preds, lazy_stats, eager_stats in assembly_comparison:
        table.append(
            [
                n_preds,
                lazy_stats.sblock,
                eager_stats.sblock,
                lazy_stats.ssig,
                eager_stats.ssig,
            ]
        )
        # Exactness of eager intersection can only reduce block reads ...
        assert eager_stats.sblock <= lazy_stats.sblock
        # ... at the price of loading the full signatures up front.
        assert eager_stats.ssig >= lazy_stats.ssig
    print_table(
        "Ablation: lazy AND vs eager recursive intersection "
        "(CoverType twin skylines)",
        ["#preds", "lazy SBlock", "eager SBlock", "lazy SSig", "eager SSig"],
        table,
    )

    rng = random.Random(3)
    predicate = covertype_predicates(covertype_system, rng)[2]
    benchmark(
        lambda: skyline_signature(
            covertype_system.relation,
            covertype_system.rtree,
            covertype_system.pcube,
            predicate,
            eager_assembly=True,
        )
    )
