"""Figure 7: incremental update time vs number of inserted tuples.

Paper observations: incremental maintenance beats recomputation by orders
of magnitude, and batch maintenance amortises (their 1M run: 0.11 s for one
tuple vs 0.04 s/tuple averaged over 100).
"""

import random
import time

import pytest

from benchmarks.conftest import SWEEP_FANOUT, fmt_seconds, print_table, sweep_config
from repro.core.maintenance import insert_batch, insert_tuple
from repro.core.pcube import PCube
from repro.data.synthetic import generate_relation
from repro.system import build_system

BASE_T = 20_000
BATCH_SIZES = (1, 10, 100)


def fresh_system():
    relation = generate_relation(sweep_config(BASE_T))
    return build_system(relation, fanout=SWEEP_FANOUT, with_indexes=False)


def random_rows(n, rng, cardinality=100, dims=3):
    return [
        (
            tuple(rng.randrange(cardinality) for _ in range(3)),
            tuple(rng.random() for _ in range(dims)),
        )
        for _ in range(n)
    ]


@pytest.fixture(scope="module")
def update_timings():
    rows = []
    for n_inserts in BATCH_SIZES:
        # one-by-one
        system = fresh_system()
        rng = random.Random(n_inserts)
        new_rows = random_rows(n_inserts, rng)
        started = time.perf_counter()
        for bool_row, pref_row in new_rows:
            insert_tuple(
                system.relation, system.rtree, system.pcube, bool_row, pref_row
            )
        per_tuple = (time.perf_counter() - started) / n_inserts

        # batched
        system = fresh_system()
        rng = random.Random(n_inserts)
        new_rows = random_rows(n_inserts, rng)
        started = time.perf_counter()
        insert_batch(system.relation, system.rtree, system.pcube, new_rows)
        per_batched = (time.perf_counter() - started) / n_inserts

        # recomputation from scratch (signatures only; tree is shared)
        started = time.perf_counter()
        PCube.build(
            system.relation, system.rtree, maintainable=False, tag="pcube-re"
        )
        recompute = time.perf_counter() - started
        rows.append((n_inserts, per_tuple, per_batched, recompute))
    return rows


def test_fig07_incremental_updates(update_timings, benchmark):
    print_table(
        f"Figure 7: update cost, base T={BASE_T:,} (per inserted tuple)",
        ["#inserted", "one-by-one", "batched", "recompute(total)", "batch gain"],
        [
            [
                n,
                fmt_seconds(one),
                fmt_seconds(batch),
                fmt_seconds(re),
                f"{one / batch:.1f}x",
            ]
            for n, one, batch, re in update_timings
        ],
    )
    for n_inserts, per_tuple, per_batched, recompute in update_timings:
        # Incremental maintenance beats full recomputation per tuple ...
        assert per_tuple < recompute
        assert per_batched < recompute
        # ... and batching amortises for non-trivial batches.
        if n_inserts == max(BATCH_SIZES):
            assert per_batched < per_tuple

    system = fresh_system()
    rng = random.Random(0)

    def one_insert():
        bool_row, pref_row = random_rows(1, rng)[0]
        insert_tuple(
            system.relation, system.rtree, system.pcube, bool_row, pref_row
        )

    benchmark.pedantic(one_insert, rounds=20, iterations=1)
