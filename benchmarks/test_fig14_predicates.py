"""Figure 14: skyline time vs number of boolean predicates (real data).

Paper observation (on Forest CoverType): "Signature and Boolean are not
sensitive to boolean predicates, and the former performs consistently
better.  Domination requests more boolean verification, and thus the
execution time grows significantly."
"""

import pytest

from benchmarks.conftest import (
    SECONDS_PER_IO,
    covertype_predicates,
    fmt_seconds,
    print_table,
)
from repro.baselines.boolean_first import boolean_first_skyline
from repro.baselines.domination_first import domination_first_skyline
from repro.query.skyline import skyline_signature


@pytest.fixture(scope="module")
def predicate_sweep(covertype_system):
    import random

    system = covertype_system
    relation = system.relation
    rng = random.Random(14)
    chain = covertype_predicates(system, rng)
    results = []
    for predicate in chain:
        sig_tids, sig_stats, _ = skyline_signature(
            relation, system.rtree, system.pcube, predicate
        )
        bool_tids, bool_stats = boolean_first_skyline(
            relation, system.indexes, predicate
        )
        dom_tids, dom_stats, _ = domination_first_skyline(
            relation, system.rtree, predicate
        )
        assert set(sig_tids) == set(bool_tids) == set(dom_tids)
        results.append((len(predicate), sig_stats, bool_stats, dom_stats))
    return results


def test_fig14_boolean_predicates(predicate_sweep, covertype_system, benchmark):
    rows = []
    for n_preds, sig_stats, bool_stats, dom_stats in predicate_sweep:
        rows.append(
            [
                n_preds,
                fmt_seconds(dom_stats.modeled_seconds(SECONDS_PER_IO)),
                fmt_seconds(bool_stats.modeled_seconds(SECONDS_PER_IO)),
                fmt_seconds(sig_stats.modeled_seconds(SECONDS_PER_IO)),
                dom_stats.total_io(),
                bool_stats.total_io(),
                sig_stats.total_io(),
            ]
        )
        # Signature wins on I/O (and modeled time) at every depth.
        assert sig_stats.total_io() <= bool_stats.total_io()
        assert sig_stats.total_io() <= dom_stats.total_io()
    print_table(
        "Figure 14: skyline time vs #boolean predicates "
        "(CoverType twin, modeled at 5 ms/page)",
        ["#preds", "Dom", "Bool", "Sig", "Dom I/O", "Bool I/O", "Sig I/O"],
        rows,
    )
    # Domination deteriorates with predicate count; Signature stays flat
    # (within 4x across 1..4 predicates vs >10x for Domination).
    dom_io = [row[4] for row in rows]
    sig_io = [row[6] for row in rows]
    assert max(dom_io) > 5 * dom_io[0] or dom_io[0] > 1000
    assert max(sig_io) <= 10 * max(1, min(sig_io))

    import random

    rng = random.Random(0)
    predicate = covertype_predicates(covertype_system, rng)[1]
    benchmark(
        lambda: skyline_signature(
            covertype_system.relation,
            covertype_system.rtree,
            covertype_system.pcube,
            predicate,
        )
    )
