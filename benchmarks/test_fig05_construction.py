"""Figure 5: construction time vs T — P-Cube vs R-tree vs B+-trees.

Paper observation: "the computation of P-Cube is 7-8 times faster than that
of R-tree, and is comparable to that of B+-tree."  The R-tree here is built
the way a dynamic R-tree is built — by repeated insertion — while P-Cube
generation is a sort-and-sweep over the finished partition.
"""

import time

import pytest

from benchmarks.conftest import SWEEP_FANOUT, SWEEP_SIZES, fmt_seconds, print_table, sweep_config
from repro.baselines.boolean_first import build_boolean_indexes
from repro.core.pcube import PCube
from repro.data.synthetic import generate_relation
from repro.rtree.rtree import RTree


@pytest.fixture(scope="module")
def construction_timings():
    rows = []
    for n_tuples in SWEEP_SIZES:
        relation = generate_relation(sweep_config(n_tuples))
        started = time.perf_counter()
        rtree = RTree(
            dims=relation.schema.n_preference,
            max_entries=SWEEP_FANOUT,
            disk=relation.disk,
        )
        for tid, point in relation.pref_points():
            rtree.insert(tid, point)
        rtree_seconds = time.perf_counter() - started

        started = time.perf_counter()
        PCube.build(relation, rtree, maintainable=False)
        pcube_seconds = time.perf_counter() - started

        started = time.perf_counter()
        build_boolean_indexes(relation)
        btree_seconds = time.perf_counter() - started

        rows.append((n_tuples, rtree_seconds, pcube_seconds, btree_seconds))
    return rows


def test_fig05_construction_time(construction_timings, benchmark):
    rows = construction_timings
    print_table(
        "Figure 5: construction time vs T (paper: 1M-10M tuples; scaled)",
        ["T", "R-tree", "P-Cube", "B-tree", "rtree/pcube"],
        [
            [
                f"{n:,}",
                fmt_seconds(rt),
                fmt_seconds(pc),
                fmt_seconds(bt),
                f"{rt / pc:.1f}x",
            ]
            for n, rt, pc, bt in rows
        ],
    )
    # Shape: P-Cube computation is several times faster than the R-tree
    # build at every size (paper: 7-8x).  The paper's second observation —
    # "comparable to B+-tree" — is reported but not asserted: a pure-Python
    # in-memory B+-tree insert pays none of the page I/O that made the
    # paper's B+-tree build as expensive as signature generation.
    for _, rtree_s, pcube_s, _btree_s in rows:
        assert pcube_s < rtree_s / 2

    # The benchmarked kernel: P-Cube generation at the smallest size.
    relation = generate_relation(sweep_config(SWEEP_SIZES[0]))
    rtree = RTree(
        dims=relation.schema.n_preference,
        max_entries=SWEEP_FANOUT,
        disk=relation.disk,
    )
    for tid, point in relation.pref_points():
        rtree.insert(tid, point)

    benchmark.pedantic(
        lambda: PCube.build(relation, rtree, maintainable=False),
        rounds=3,
        iterations=1,
    )
