"""Figure 6: materialised size vs T — P-Cube vs R-tree vs B+-trees.

Paper observation: "for space consumption, P-Cube is 2 times less than
B+-trees and 8 times less than R-tree."
"""

from benchmarks.conftest import SWEEP_SIZES, print_table


def test_fig06_materialized_size(sweep_systems, benchmark):
    rows = []
    for n_tuples in SWEEP_SIZES:
        system = sweep_systems[n_tuples]
        rows.append(
            (
                n_tuples,
                system.rtree_size_mb(),
                system.pcube_size_mb(),
                system.btree_size_mb(),
            )
        )
    print_table(
        "Figure 6: materialised size vs T (MB)",
        ["T", "R-tree", "P-Cube", "B-tree", "btree/pcube", "rtree/pcube"],
        [
            [
                f"{n:,}",
                f"{rt:.2f}",
                f"{pc:.2f}",
                f"{bt:.2f}",
                f"{bt / pc:.1f}x",
                f"{rt / pc:.1f}x",
            ]
            for n, rt, pc, bt in rows
        ],
    )
    # Shape: P-Cube is the smallest materialisation at every size (the
    # paper reports 2x below B+-trees and 8x below the R-tree).
    for _, rtree_mb, pcube_mb, btree_mb in rows:
        assert pcube_mb < btree_mb
        assert pcube_mb < rtree_mb

    system = sweep_systems[SWEEP_SIZES[0]]
    benchmark(system.pcube.size_bytes)
