"""Extension bench: Section VII preference queries on the same cube.

Demonstrates that the P-Cube built once serves all four preference-query
types — static skyline, dynamic skyline, top-k, lower convex hull — and
that signature pruning pays off for each (block reads vs the same query
without boolean pruning plus post-filtering, i.e. the Domination style).
"""

import random

import pytest

from benchmarks.conftest import SWEEP_SIZES, print_table
from repro.data.workload import sample_linear_function, sample_predicate
from repro.query.dynamic import DynamicSkylineStrategy, dynamic_skyline_signature
from repro.query.hull import lower_hull_signature
from repro.query.algorithm1 import run_algorithm1
from repro.query.skyline import skyline_signature
from repro.query.stats import QueryStats
from repro.query.topk import topk_signature
from repro.storage.counters import DBLOCK


@pytest.fixture(scope="module")
def extension_comparison(sweep_systems):
    # 2-D system for the hull; rebuild a small 2-D one.
    from benchmarks.conftest import SWEEP_FANOUT, sweep_config
    from repro.data.synthetic import generate_relation
    from repro.system import build_system

    relation = generate_relation(
        sweep_config(SWEEP_SIZES[0], n_preference=2, seed=77)
    )
    system = build_system(relation, fanout=SWEEP_FANOUT, with_indexes=False)
    rng = random.Random(21)
    predicate = sample_predicate(relation, 1, rng)
    query_point = (rng.random(), rng.random())
    fn = sample_linear_function(2, rng)

    rows = []

    _, sky_stats, _ = skyline_signature(
        relation, system.rtree, system.pcube, predicate
    )
    rows.append(("static skyline", sky_stats))

    _, dyn_stats, _ = dynamic_skyline_signature(
        relation, system.rtree, system.pcube, query_point, predicate
    )
    rows.append(("dynamic skyline", dyn_stats))

    _, topk_stats, _ = topk_signature(
        relation, system.rtree, system.pcube, fn, 20, predicate
    )
    rows.append(("top-20", topk_stats))

    _, hull_stats = lower_hull_signature(
        relation, system.rtree, system.pcube, predicate
    )
    rows.append(("lower hull", hull_stats))

    # The no-signature baseline for the dynamic skyline (predicate-blind
    # search + verification), for the pruning-benefit column.
    blind_stats = QueryStats()
    run_algorithm1(
        system.rtree,
        DynamicSkylineStrategy(query_point),
        blind_stats,
        reader=None,
        verifier=lambda tid: predicate.matches(relation, tid),
        block_category=DBLOCK,
        keep_lists=False,
    )
    return system, rows, blind_stats, (relation, predicate, query_point)


def test_ext_all_preference_queries_share_the_cube(
    extension_comparison, benchmark
):
    system, rows, blind_stats, kernel_args = extension_comparison
    table = [
        [name, stats.sblock, stats.ssig, stats.results]
        for name, stats in rows
    ]
    table.append(
        ["dynamic w/o signature", blind_stats.dblock, 0, blind_stats.results]
    )
    print_table(
        "Extension: one P-Cube, four preference-query types "
        f"(T={SWEEP_SIZES[0]:,}, single predicate)",
        ["query", "blocks", "SSig", "results"],
        table,
    )
    # Signature pruning benefits the dynamic skyline exactly as it does
    # the static one: far fewer block reads than the predicate-blind run.
    dynamic_stats = rows[1][1]
    assert dynamic_stats.sblock < blind_stats.dblock
    # Every query type used the cube (loaded at least one partial).
    for _, stats in rows:
        assert stats.ssig >= 1

    relation, predicate, query_point = kernel_args
    benchmark(
        lambda: dynamic_skyline_signature(
            relation, system.rtree, system.pcube, query_point, predicate
        )
    )
