"""Figure 12: skyline time vs number of preference dimensions Dp ∈ {2,3,4}.

Paper observation: "It becomes more challenging to compute the skyline
results when the number of dimension goes high, and the computation time
for Domination increases.  On the other hand, the preference selectivity
has limited effect on Boolean. ... Signature performs fairly robustly and
is consistently the best."
"""

import random

import pytest

from benchmarks.conftest import (
    N_QUERIES,
    SECONDS_PER_IO,
    SWEEP_FANOUT,
    fmt_seconds,
    print_table,
    sweep_config,
)
from repro.baselines.boolean_first import boolean_first_skyline
from repro.baselines.domination_first import domination_first_skyline
from repro.data.synthetic import generate_relation
from repro.data.workload import sample_predicate
from repro.query.skyline import skyline_signature
from repro.system import build_system

PREF_DIMS = (2, 3, 4)
T = 20_000


@pytest.fixture(scope="module")
def dims_sweep():
    rng = random.Random(12)
    results = {}
    for n_preference in PREF_DIMS:
        relation = generate_relation(
            sweep_config(T, n_preference=n_preference, seed=n_preference)
        )
        system = build_system(relation, fanout=SWEEP_FANOUT)
        modeled = {"Signature": 0.0, "Boolean": 0.0, "Domination": 0.0}
        for _ in range(N_QUERIES):
            predicate = sample_predicate(relation, 1, rng)
            _, sig_stats, _ = skyline_signature(
                relation, system.rtree, system.pcube, predicate
            )
            _, bool_stats = boolean_first_skyline(
                relation, system.indexes, predicate
            )
            _, dom_stats, _ = domination_first_skyline(
                relation, system.rtree, predicate
            )
            for key, stats in (
                ("Signature", sig_stats),
                ("Boolean", bool_stats),
                ("Domination", dom_stats),
            ):
                modeled[key] += stats.modeled_seconds(SECONDS_PER_IO)
        results[n_preference] = {
            key: value / N_QUERIES for key, value in modeled.items()
        }
    return results


def test_fig12_preference_dimensions(dims_sweep, benchmark):
    rows = [
        [
            n_preference,
            fmt_seconds(avg["Boolean"]),
            fmt_seconds(avg["Domination"]),
            fmt_seconds(avg["Signature"]),
        ]
        for n_preference, avg in ((d, dims_sweep[d]) for d in PREF_DIMS)
    ]
    print_table(
        f"Figure 12: skyline time vs Dp (T={T:,}, modeled at 5 ms/page)",
        ["Dp", "Boolean", "Domination", "Signature"],
        rows,
    )
    # Domination degrades as dimensionality rises.
    assert dims_sweep[4]["Domination"] > dims_sweep[2]["Domination"]
    # Signature is consistently the best of the three.
    for n_preference in PREF_DIMS:
        avg = dims_sweep[n_preference]
        assert avg["Signature"] <= avg["Boolean"]
        assert avg["Signature"] <= avg["Domination"]

    relation = generate_relation(sweep_config(5_000, n_preference=3, seed=3))
    system = build_system(relation, fanout=SWEEP_FANOUT, with_indexes=False)
    rng = random.Random(0)
    predicate = sample_predicate(relation, 1, rng)
    benchmark(
        lambda: skyline_signature(
            relation, system.rtree, system.pcube, predicate
        )
    )
