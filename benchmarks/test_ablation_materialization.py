"""Ablation: atomic-only vs two-dimensional cuboid materialisation.

The paper materialises atomic cuboids and assembles conjunctions online
(Figures 14-15 argue that is "good enough"); partial materialisation of
low-dimensional cuboids ([19], [12]) is the alternative.  This bench
measures both sides of the trade on two-predicate queries: storage and
build time vs per-query block reads.
"""

import random
import time

import pytest

from benchmarks.conftest import SWEEP_FANOUT, fmt_seconds, print_table, sweep_config
from repro.core.pcube import PCube
from repro.cube.cuboid import Cuboid, atomic_cuboids
from repro.data.synthetic import generate_relation
from repro.data.workload import sample_predicate
from repro.query.skyline import skyline_signature
from repro.rtree.bulk import bulk_load

T = 20_000
N_QUERIES = 8


@pytest.fixture(scope="module")
def materialization_comparison():
    relation = generate_relation(sweep_config(T, cardinality=30, seed=19))
    rtree = bulk_load(
        list(relation.pref_points()),
        dims=relation.schema.n_preference,
        max_entries=SWEEP_FANOUT,
        disk=relation.disk,
    )
    dims = relation.schema.boolean_dims

    started = time.perf_counter()
    atomic = PCube.build(
        relation, rtree, cuboids=atomic_cuboids(dims), tag="pcube-atomic"
    )
    atomic_build = time.perf_counter() - started

    pair_cuboids = list(atomic_cuboids(dims)) + [
        Cuboid((dims[i], dims[j]))
        for i in range(len(dims))
        for j in range(i + 1, len(dims))
    ]
    started = time.perf_counter()
    rich = PCube.build(relation, rtree, cuboids=pair_cuboids, tag="pcube-rich")
    rich_build = time.perf_counter() - started

    rng = random.Random(20)
    atomic_io = rich_io = 0
    atomic_ssig = rich_ssig = 0
    for _ in range(N_QUERIES):
        predicate = sample_predicate(relation, 2, rng)
        tids_a, stats_a, _ = skyline_signature(relation, rtree, atomic, predicate)
        tids_r, stats_r, _ = skyline_signature(relation, rtree, rich, predicate)
        assert set(tids_a) == set(tids_r)
        atomic_io += stats_a.sblock
        rich_io += stats_r.sblock
        atomic_ssig += stats_a.ssig
        rich_ssig += stats_r.ssig
    return {
        "atomic": (
            atomic_build,
            relation.disk.size_mb("pcube-atomic"),
            atomic_io / N_QUERIES,
            atomic_ssig / N_QUERIES,
        ),
        "rich": (
            rich_build,
            relation.disk.size_mb("pcube-rich"),
            rich_io / N_QUERIES,
            rich_ssig / N_QUERIES,
        ),
        "kernel": (relation, rtree, rich, sample_predicate(relation, 2, rng)),
    }


def test_ablation_materialization_depth(materialization_comparison, benchmark):
    comparison = materialization_comparison
    rows = []
    for name in ("atomic", "rich"):
        build, size_mb, sblock, ssig = comparison[name]
        rows.append(
            [
                name,
                fmt_seconds(build),
                f"{size_mb:.2f}MB",
                f"{sblock:.0f}",
                f"{ssig:.1f}",
            ]
        )
    print_table(
        f"Ablation: atomic vs atomic+pairs materialisation "
        f"(T={T:,}, 2-predicate skylines)",
        ["cuboids", "build", "size", "SBlock/query", "SSig/query"],
        rows,
    )
    atomic_build, atomic_size, atomic_sblock, _ = comparison["atomic"]
    rich_build, rich_size, rich_sblock, _ = comparison["rich"]
    # Materialising pairs costs build time and space ...
    assert rich_build > atomic_build
    assert rich_size > atomic_size
    # ... and buys strictly better (or equal) pruning on conjunctions.
    assert rich_sblock <= atomic_sblock

    relation, rtree, rich, predicate = comparison["kernel"]
    benchmark(lambda: skyline_signature(relation, rtree, rich, predicate))
