"""Ablation: per-node bitmap codecs (paper Section IV-B.1, reason (2)).

The paper compresses each signature node individually so that "one may
achieve better compression ratio by adaptively choosing different
compression scheme[s]".  This bench measures each codec — and the adaptive
choice — over the real node population of a built P-Cube.
"""

import pytest

from benchmarks.conftest import print_table
from repro.bitmap.compression import CODECS, compress
from repro.cube.cuboid import Cell


@pytest.fixture(scope="module")
def node_population(sweep_systems):
    """Every node bit array of every cell signature at the smallest size."""
    system = sweep_systems[min(sweep_systems)]
    nodes = []
    for cell_id in system.pcube.store.cells():
        dim, value = cell_id.split("=")
        cell = Cell((dim,), (int(value),))
        signature = system.pcube.signature_of(cell)
        nodes.extend(
            signature.node(sid) for sid in signature.node_sids()
        )
    return nodes


def test_ablation_codec_sizes(node_population, benchmark):
    raw_bytes = sum(len(bits.to_bytes()) for bits in node_population)
    rows = []
    sizes = {}
    for codec in sorted(CODECS) + ["adaptive"]:
        total = sum(len(compress(bits, codec)) for bits in node_population)
        sizes[codec] = total
        rows.append(
            [
                codec,
                f"{total / 1024:.1f}KB",
                f"{raw_bytes / total:.2f}x",
            ]
        )
    print_table(
        f"Ablation: codec size over {len(node_population):,} signature "
        f"nodes (packed bits: {raw_bytes / 1024:.1f}KB)",
        ["codec", "compressed", "vs packed"],
        rows,
    )
    # The adaptive choice is at least as small as every fixed codec and
    # strictly better than the worst one.
    assert sizes["adaptive"] == min(sizes.values())
    assert sizes["adaptive"] < max(
        sizes[codec] for codec in CODECS
    )

    sample = node_population[: min(500, len(node_population))]
    benchmark(lambda: [compress(bits, "adaptive") for bits in sample])
