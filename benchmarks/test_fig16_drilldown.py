"""Figure 16: drill-down queries vs equivalent fresh queries.

Paper observation: "We observe more than 10 times speed-up by caching the
previous intermediate results and re-constructing the candidate heap upon
them."  (Roll-up behaves similarly.)
"""

import pytest

from benchmarks.conftest import (
    SECONDS_PER_IO,
    covertype_predicates,
    fmt_seconds,
    print_table,
)


@pytest.fixture(scope="module")
def drilldown_sweep(covertype_system):
    import random

    system = covertype_system
    rng = random.Random(16)
    chain = covertype_predicates(system, rng)
    results = []
    current = system.engine.skyline(chain[0])
    for predicate in chain[1:]:
        (new_dim,) = set(predicate.dims()) - set(current.predicate.dims())
        drilled = system.engine.drill_down(
            current, new_dim, predicate.conjuncts[new_dim]
        )
        fresh = system.engine.skyline(predicate)
        assert set(drilled.tids) == set(fresh.tids)
        results.append((len(predicate), drilled.stats, fresh.stats))
        current = drilled
    # Roll-up ("the performance for roll-up query is similar"): walk back
    # up the same chain and compare against fresh queries too.
    rollups = []
    for predicate in reversed(chain[:-1]):
        (removed,) = set(current.predicate.dims()) - set(predicate.dims())
        rolled = system.engine.roll_up(current, removed)
        fresh = system.engine.skyline(predicate)
        assert set(rolled.tids) == set(fresh.tids)
        rollups.append((len(predicate), rolled.stats, fresh.stats))
        current = rolled
    return results, rollups


def test_fig16_drilldown_vs_new(drilldown_sweep, covertype_system, benchmark):
    drilldown_sweep, rollup_sweep = drilldown_sweep
    rows = []
    for n_preds, drill_stats, fresh_stats in drilldown_sweep:
        drill_modeled = drill_stats.modeled_seconds(SECONDS_PER_IO)
        fresh_modeled = fresh_stats.modeled_seconds(SECONDS_PER_IO)
        rows.append(
            [
                n_preds,
                fmt_seconds(fresh_modeled),
                fmt_seconds(drill_modeled),
                fresh_stats.total_io(),
                drill_stats.total_io(),
                f"{fresh_modeled / drill_modeled:.1f}x",
            ]
        )
        # The incremental restart never reads more than the fresh search.
        assert drill_stats.total_io() <= fresh_stats.total_io()
    print_table(
        "Figure 16: drill-down vs new query "
        "(CoverType twin, modeled at 5 ms/page; paper: >10x speed-up)",
        ["#preds", "new", "drill", "new I/O", "drill I/O", "speedup"],
        rows,
    )
    # Deep drill-downs show substantial speed-ups.
    deepest = rows[-1]
    assert deepest[3] >= 2 * max(1, deepest[4])

    # Roll-up behaves "similarly" (paper's remark): never more I/O than a
    # fresh query on the relaxed predicate.
    rollup_rows = []
    for n_preds, rolled_stats, fresh_stats in rollup_sweep:
        rollup_rows.append(
            [
                n_preds,
                fresh_stats.total_io(),
                rolled_stats.total_io(),
                f"{fmt_seconds(rolled_stats.modeled_seconds(SECONDS_PER_IO))}",
            ]
        )
        assert rolled_stats.total_io() <= fresh_stats.total_io()
    print_table(
        "Figure 16 (companion): roll-up vs new query",
        ["#preds", "new I/O", "roll I/O", "roll@5ms"],
        rollup_rows,
    )

    import random

    rng = random.Random(2)
    chain = covertype_predicates(covertype_system, rng)
    base = covertype_system.engine.skyline(chain[1])
    (dim,) = set(chain[2].dims()) - set(chain[1].dims())
    value = chain[2].conjuncts[dim]
    benchmark(
        lambda: covertype_system.engine.drill_down(base, dim, value)
    )
