"""Shared benchmark fixtures and reporting helpers.

Every ``test_figNN_*.py`` module reproduces one figure of the paper's
evaluation (Section VI).  The sweeps run once per session inside fixtures;
each test prints the paper-shaped table (same series, same x-axis, scaled
sizes) and asserts the *shape* claims — who wins, roughly by how much —
rather than absolute numbers.

Scaling: the paper runs 1M-10M tuples on a 2008 C++/disk testbed; this
harness runs 10k-50k tuples on a pure-Python simulator.  Wall-clock numbers
therefore mix Python overhead into what was disk time; tables report both
raw ``time`` and ``t@5ms`` — execution time under a 5 ms-per-page-access
disk model — plus the raw access counts, which are hardware independent.
"""

from __future__ import annotations

import random

import pytest

from repro.data.covertype import covertype_relation
from repro.data.synthetic import SyntheticConfig, generate_relation
from repro.system import build_system

#: The scalability sweep (paper: 1M, 5M, 10M).
SWEEP_SIZES = (10_000, 20_000, 50_000)
#: Queries averaged per data point.
N_QUERIES = 5
#: Modeled random-access latency (2008-era disk).
SECONDS_PER_IO = 0.005
#: R-tree fanout for the synthetic sweeps (keeps height 3 at 50k tuples).
SWEEP_FANOUT = 64


def fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print one paper-figure table."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    print(f"\n=== {title} ===")
    print("  " + "  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print(
            "  " + "  ".join(str(v).rjust(w) for v, w in zip(row, widths))
        )


def sweep_config(n_tuples: int, **overrides) -> SyntheticConfig:
    """The paper's default synthetic setting: Db = Dp = 3, C = 100."""
    params = dict(
        n_tuples=n_tuples,
        n_boolean=3,
        cardinality=100,
        n_preference=3,
        distribution="uniform",
        seed=n_tuples % 97 + 7,
    )
    params.update(overrides)
    return SyntheticConfig(**params)


@pytest.fixture(scope="session")
def sweep_systems():
    """One built system per sweep size (shared by Figures 6, 8, 9, 10)."""
    systems = {}
    for n_tuples in SWEEP_SIZES:
        relation = generate_relation(sweep_config(n_tuples))
        systems[n_tuples] = build_system(relation, fanout=SWEEP_FANOUT)
    return systems


@pytest.fixture(scope="session")
def covertype_system():
    """The CoverType twin (Figures 14, 15, 16)."""
    relation = covertype_relation(n_rows=40_000)
    return build_system(relation, fanout=SWEEP_FANOUT)


@pytest.fixture()
def query_rng():
    return random.Random(2008)


def covertype_predicates(system, rng, max_conjuncts=4):
    """A nested predicate chain over the high-cardinality attributes,
    anchored at a live tuple (the Figure 14-16 workload)."""
    from repro.data.workload import sample_predicate

    relation = system.relation
    dims = relation.schema.boolean_dims[:max_conjuncts]
    predicate = sample_predicate(relation, 1, rng, dims=dims[:1])
    chain = [predicate]
    for dim in dims[1:]:
        anchor = next(
            tid for tid in relation.tids() if predicate.matches(relation, tid)
        )
        predicate = predicate.drill_down(
            dim, relation.bool_value(anchor, dim)
        )
        chain.append(predicate)
    return chain
