"""Shared benchmark fixtures and reporting helpers.

Every ``test_figNN_*.py`` module reproduces one figure of the paper's
evaluation (Section VI).  The sweeps run once per session inside fixtures;
each test prints the paper-shaped table (same series, same x-axis, scaled
sizes) and asserts the *shape* claims — who wins, roughly by how much —
rather than absolute numbers.

Scaling: the paper runs 1M-10M tuples on a 2008 C++/disk testbed; this
harness runs 10k-50k tuples on a pure-Python simulator.  Wall-clock numbers
therefore mix Python overhead into what was disk time; tables report both
raw ``time`` and ``t@5ms`` — execution time under a 5 ms-per-page-access
disk model — plus the raw access counts, which are hardware independent.

The seeded data sets (sweep sizes, per-size seeds, the CoverType twin) are
defined once in :mod:`repro.data.fixtures`, shared with ``tests/`` and the
``python -m repro.bench`` runner, so a regression seen by the runner can be
reproduced here on the identical input.
"""

from __future__ import annotations

import random

import pytest

from repro.data.fixtures import (  # noqa: F401 - re-exported for figures
    N_QUERIES,
    SECONDS_PER_IO,
    SWEEP_FANOUT,
    SWEEP_SIZES,
    build_covertype_system,
    build_sweep_system,
    covertype_predicates,
    sweep_config,
)


def fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print one paper-figure table."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    print(f"\n=== {title} ===")
    print("  " + "  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print(
            "  " + "  ".join(str(v).rjust(w) for v, w in zip(row, widths))
        )


@pytest.fixture(scope="session")
def sweep_systems():
    """One built system per sweep size (shared by Figures 6, 8, 9, 10)."""
    return {
        n_tuples: build_sweep_system(n_tuples) for n_tuples in SWEEP_SIZES
    }


@pytest.fixture(scope="session")
def covertype_system():
    """The CoverType twin (Figures 14, 15, 16)."""
    return build_covertype_system()


@pytest.fixture()
def query_rng():
    return random.Random(2008)
