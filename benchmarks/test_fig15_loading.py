"""Figure 15: signature loading time vs query processing time.

Paper observation: "The time used for loading signatures increases slightly
with k [predicates].  However, even when there are 4 boolean predicates,
the signature loading time is still far less than the query processing time
(i.e., less than 10%) ... materialising atomic cuboids only may be good
enough in real applications."
"""

import pytest

from benchmarks.conftest import (
    SECONDS_PER_IO,
    covertype_predicates,
    fmt_seconds,
    print_table,
)
from repro.query.skyline import skyline_signature


@pytest.fixture(scope="module")
def loading_sweep(covertype_system):
    import random

    system = covertype_system
    rng = random.Random(15)
    chain = covertype_predicates(system, rng)
    results = []
    for predicate in chain:
        _, stats, _ = skyline_signature(
            system.relation, system.rtree, system.pcube, predicate
        )
        load_modeled = stats.sig_load_seconds + SECONDS_PER_IO * stats.ssig
        total_modeled = stats.modeled_seconds(SECONDS_PER_IO)
        results.append((len(predicate), stats, load_modeled, total_modeled))
    return results


def test_fig15_signature_loading(loading_sweep, covertype_system, benchmark):
    rows = []
    for n_preds, stats, load_modeled, total_modeled in loading_sweep:
        share = load_modeled / total_modeled
        rows.append(
            [
                n_preds,
                fmt_seconds(load_modeled),
                fmt_seconds(total_modeled),
                f"{share * 100:.1f}%",
                stats.ssig,
                stats.sblock,
            ]
        )
        # Loading stays a minority share of query cost (paper: <10%; the
        # scaled simulator stays below one half even at 4 predicates).
        assert load_modeled < 0.5 * total_modeled
    print_table(
        "Figure 15: signature loading vs total query time "
        "(CoverType twin, modeled at 5 ms/page; paper: load < 10%)",
        ["#preds", "load", "total", "share", "SSig", "SBlock"],
        rows,
    )
    # Loading grows with the number of one-dimensional signatures, since
    # only atomic cuboids are materialised.
    assert rows[-1][4] >= rows[0][4]

    import random

    rng = random.Random(1)
    predicate = covertype_predicates(covertype_system, rng)[3]
    benchmark(
        lambda: skyline_signature(
            covertype_system.relation,
            covertype_system.rtree,
            covertype_system.pcube,
            predicate,
        )
    )
