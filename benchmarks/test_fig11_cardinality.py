"""Figure 11: skyline time vs boolean cardinality C ∈ {10, 100, 1000}.

Paper observation: "Boolean performs better when C increases and the
performance of Domination deteriorates" (higher C = more selective
predicates: cheap for subset retrieval, hostile to lazy verification).
Signature stays robust and best throughout.
"""

import random

import pytest

from benchmarks.conftest import (
    N_QUERIES,
    SECONDS_PER_IO,
    SWEEP_FANOUT,
    fmt_seconds,
    print_table,
    sweep_config,
)
from repro.baselines.boolean_first import boolean_first_skyline
from repro.baselines.domination_first import domination_first_skyline
from repro.data.synthetic import generate_relation
from repro.data.workload import sample_predicate
from repro.query.skyline import skyline_signature
from repro.system import build_system

CARDINALITIES = (10, 100, 1000)
T = 20_000


@pytest.fixture(scope="module")
def cardinality_sweep():
    rng = random.Random(11)
    results = {}
    kernel = None
    for cardinality in CARDINALITIES:
        relation = generate_relation(
            sweep_config(T, cardinality=cardinality, seed=cardinality)
        )
        system = build_system(relation, fanout=SWEEP_FANOUT)
        modeled = {"Signature": 0.0, "Boolean": 0.0, "Domination": 0.0}
        for _ in range(N_QUERIES):
            predicate = sample_predicate(relation, 1, rng)
            _, sig_stats, _ = skyline_signature(
                relation, system.rtree, system.pcube, predicate
            )
            _, bool_stats = boolean_first_skyline(
                relation, system.indexes, predicate
            )
            _, dom_stats, _ = domination_first_skyline(
                relation, system.rtree, predicate
            )
            for key, stats in (
                ("Signature", sig_stats),
                ("Boolean", bool_stats),
                ("Domination", dom_stats),
            ):
                modeled[key] += stats.modeled_seconds(SECONDS_PER_IO)
        results[cardinality] = {
            key: value / N_QUERIES for key, value in modeled.items()
        }
        if cardinality == 100:
            held_predicate = sample_predicate(relation, 1, rng)
            kernel = lambda: skyline_signature(  # noqa: E731
                relation, system.rtree, system.pcube, held_predicate
            )
    return results, kernel


def test_fig11_boolean_cardinality(cardinality_sweep, benchmark):
    cardinality_sweep, kernel = cardinality_sweep
    rows = [
        [
            cardinality,
            fmt_seconds(avg["Boolean"]),
            fmt_seconds(avg["Domination"]),
            fmt_seconds(avg["Signature"]),
        ]
        for cardinality, avg in (
            (c, cardinality_sweep[c]) for c in CARDINALITIES
        )
    ]
    print_table(
        f"Figure 11: skyline time vs boolean cardinality (T={T:,}, "
        "modeled at 5 ms/page)",
        ["C", "Boolean", "Domination", "Signature"],
        rows,
    )
    # Boolean improves with C; Domination deteriorates with C.
    assert (
        cardinality_sweep[1000]["Boolean"]
        < cardinality_sweep[10]["Boolean"]
    )
    assert (
        cardinality_sweep[1000]["Domination"]
        > cardinality_sweep[10]["Domination"]
    )
    # Signature is consistently the best of the three.
    for cardinality in CARDINALITIES:
        avg = cardinality_sweep[cardinality]
        assert avg["Signature"] <= avg["Boolean"]
        assert avg["Signature"] <= avg["Domination"]

    benchmark(kernel)
