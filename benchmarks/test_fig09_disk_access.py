"""Figure 9: number of disk accesses vs T — DBool, DBlock, SBlock, SSig.

Paper observations: "(1) in Signature, the cost of loading signature is far
smaller (≤ 1%) than that of retrieving R-tree blocks, and (2) guided by the
signatures, our method prunes more than 1/3 R-tree blocks comparing with
Domination and avoids even more random tuple accesses."
"""

import random

import pytest

from benchmarks.conftest import N_QUERIES, SWEEP_SIZES, print_table
from repro.baselines.domination_first import domination_first_skyline
from repro.data.workload import sample_predicate
from repro.query.skyline import skyline_signature


@pytest.fixture(scope="module")
def access_sweep(sweep_systems):
    rng = random.Random(9)
    results = {}
    for n_tuples in SWEEP_SIZES:
        system = sweep_systems[n_tuples]
        totals = {"SSig": 0, "SBlock": 0, "DBlock": 0, "DBool": 0}
        for _ in range(N_QUERIES):
            predicate = sample_predicate(system.relation, 1, rng)
            _, sig_stats, _ = skyline_signature(
                system.relation, system.rtree, system.pcube, predicate
            )
            _, dom_stats, _ = domination_first_skyline(
                system.relation, system.rtree, predicate
            )
            totals["SSig"] += sig_stats.ssig
            totals["SBlock"] += sig_stats.sblock
            totals["DBlock"] += dom_stats.dblock
            totals["DBool"] += dom_stats.dbool
        results[n_tuples] = {
            key: value / N_QUERIES for key, value in totals.items()
        }
    return results


def test_fig09_disk_accesses(access_sweep, sweep_systems, benchmark):
    rows = []
    for n_tuples in SWEEP_SIZES:
        avg = access_sweep[n_tuples]
        rows.append(
            [
                f"{n_tuples:,}",
                f"{avg['DBool']:.0f}",
                f"{avg['DBlock']:.0f}",
                f"{avg['SBlock']:.0f}",
                f"{avg['SSig']:.0f}",
                f"{avg['SBlock'] / avg['DBlock']:.2f}",
            ]
        )
        # Shape claims.
        assert avg["SSig"] < avg["SBlock"]  # loading ≪ block retrieval
        assert avg["SBlock"] <= avg["DBlock"]  # boolean pruning helps
        # Domination additionally pays many random tuple verifications.
        assert avg["DBool"] > 0
        assert (
            avg["SBlock"] + avg["SSig"]
            < avg["DBlock"] + avg["DBool"]
        )
    print_table(
        "Figure 9: avg disk accesses per skyline query vs T "
        "(paper: SSig ≤ 1% of SBlock; SBlock ≤ 2/3 of DBlock)",
        ["T", "DBool", "DBlock", "SBlock", "SSig", "SBlock/DBlock"],
        rows,
    )

    system = sweep_systems[SWEEP_SIZES[0]]
    rng = random.Random(3)
    predicate = sample_predicate(system.relation, 1, rng)
    benchmark(
        lambda: domination_first_skyline(
            system.relation, system.rtree, predicate
        )
    )
