"""Ablation: counted-signature patching vs full cell recomputation.

DESIGN.md design decision: counted signatures give O(path length) updates
per affected cell; the paper's fallback recomputes a cell's signature from
the tree.  This bench measures the gap, and the split policies' effect on
update cost (R* forced re-insertion moves more tuples per insert).
"""

import random
import time

import pytest

from benchmarks.conftest import SWEEP_FANOUT, fmt_seconds, print_table, sweep_config
from repro.core.maintenance import insert_tuple
from repro.cube.cuboid import Cuboid
from repro.data.synthetic import generate_relation
from repro.system import build_system

T = 10_000
N_UPDATES = 50


def timed_updates(split: str) -> tuple[float, float]:
    relation = generate_relation(sweep_config(T, seed=21))
    system = build_system(
        relation, fanout=SWEEP_FANOUT, with_indexes=False, split=split
    )
    rng = random.Random(4)
    started = time.perf_counter()
    for _ in range(N_UPDATES):
        insert_tuple(
            system.relation,
            system.rtree,
            system.pcube,
            tuple(rng.randrange(100) for _ in range(3)),
            tuple(rng.random() for _ in range(3)),
        )
    incremental = (time.perf_counter() - started) / N_UPDATES

    # Recompute path: patch one cell from scratch per insert instead.
    cuboid = Cuboid(("A1",))
    started = time.perf_counter()
    for _ in range(10):
        tid = rng.randrange(len(system.relation))
        cell = cuboid.cell_for(system.relation, tid)
        system.pcube.recompute_cell(cell)
    recompute = (time.perf_counter() - started) / 10
    return incremental, recompute


@pytest.fixture(scope="module")
def maintenance_timings():
    return {
        split: timed_updates(split)
        for split in ("quadratic", "linear", "rstar")
    }


def test_ablation_maintenance_strategies(maintenance_timings, benchmark):
    rows = []
    for split, (incremental, recompute) in maintenance_timings.items():
        rows.append(
            [
                split,
                fmt_seconds(incremental),
                fmt_seconds(recompute),
                f"{recompute / incremental:.1f}x",
            ]
        )
        # Counted patching beats per-cell recomputation decisively.
        assert incremental < recompute
    print_table(
        f"Ablation: incremental patching vs cell recomputation "
        f"(T={T:,}, per operation)",
        ["split policy", "counted patch", "recompute cell", "gap"],
        rows,
    )

    relation = generate_relation(sweep_config(5_000, seed=5))
    system = build_system(relation, fanout=SWEEP_FANOUT, with_indexes=False)
    rng = random.Random(6)
    benchmark.pedantic(
        lambda: insert_tuple(
            system.relation,
            system.rtree,
            system.pcube,
            tuple(rng.randrange(100) for _ in range(3)),
            tuple(rng.random() for _ in range(3)),
        ),
        rounds=20,
        iterations=1,
    )
