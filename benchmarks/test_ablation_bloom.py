"""Ablation: lossy Bloom-filter signatures (paper Section VII).

The lossy variant trades storage for extra (conservative) block reads.
This bench measures both sides at several target false-positive rates.
"""

import random

import pytest

from benchmarks.conftest import print_table
from repro.core.bloom_sig import BloomConjunction, BloomSignature
from repro.core.partial import decompose
from repro.data.workload import sample_predicate
from repro.query.algorithm1 import SkylineStrategy, run_algorithm1
from repro.query.stats import QueryStats

FP_RATES = (0.001, 0.01, 0.1)
N_QUERIES = 5


@pytest.fixture(scope="module")
def bloom_comparison(sweep_systems):
    system = sweep_systems[min(sweep_systems)]
    relation = system.relation
    rng = random.Random(18)
    queries = [sample_predicate(relation, 1, rng) for _ in range(N_QUERIES)]

    exact_bytes = 0
    exact_expanded = 0
    for predicate in queries:
        (cell,) = predicate.atomic_cells()
        signature = system.pcube.signature_of(cell)
        exact_bytes += sum(
            p.size_bytes
            for p in decompose(signature, system.disk.page_size)
        )
        stats = QueryStats()
        from repro.core.pcube import SignatureAdapter

        run_algorithm1(
            system.rtree,
            SkylineStrategy(system.rtree.dims),
            stats,
            reader=SignatureAdapter(signature),
        )
        exact_expanded += stats.nodes_expanded

    per_rate = {}
    for fp_rate in FP_RATES:
        total_bytes = 0
        total_expanded = 0
        for predicate in queries:
            (cell,) = predicate.atomic_cells()
            signature = system.pcube.signature_of(cell)
            bloom = BloomSignature.from_signature(signature, fp_rate=fp_rate)
            total_bytes += bloom.size_bytes()
            stats = QueryStats()
            state = run_algorithm1(
                system.rtree,
                SkylineStrategy(system.rtree.dims),
                stats,
                reader=BloomConjunction([bloom]),
                verifier=lambda tid, p=predicate: p.matches(relation, tid),
            )
            total_expanded += stats.nodes_expanded
            del state
        per_rate[fp_rate] = (total_bytes, total_expanded)
    return exact_bytes, exact_expanded, per_rate


def test_ablation_bloom_signatures(bloom_comparison, sweep_systems, benchmark):
    exact_bytes, exact_expanded, per_rate = bloom_comparison
    rows = [["exact", f"{exact_bytes / 1024:.1f}KB", exact_expanded, "-"]]
    for fp_rate in FP_RATES:
        total_bytes, total_expanded = per_rate[fp_rate]
        rows.append(
            [
                f"bloom@{fp_rate}",
                f"{total_bytes / 1024:.1f}KB",
                total_expanded,
                f"+{total_expanded - exact_expanded}",
            ]
        )
        # Conservative: never fewer expansions than the exact signature.
        assert total_expanded >= exact_expanded
    print_table(
        f"Ablation: Bloom vs exact signatures ({N_QUERIES} skyline queries)",
        ["variant", "signature bytes", "nodes expanded", "extra blocks"],
        rows,
    )
    # The loosest filter must be substantially smaller than the exact form.
    loose_bytes, _ = per_rate[max(FP_RATES)]
    assert loose_bytes < exact_bytes
    # Tighter filters expand fewer (or equal) extra nodes than looser ones.
    assert per_rate[min(FP_RATES)][1] <= per_rate[max(FP_RATES)][1]

    system = sweep_systems[min(sweep_systems)]
    from repro.cube.cuboid import Cell

    cell_id = system.pcube.store.cells()[0]
    dim, value = cell_id.split("=")
    signature = system.pcube.signature_of(Cell((dim,), (int(value),)))
    benchmark(
        lambda: BloomSignature.from_signature(signature, fp_rate=0.01)
    )
