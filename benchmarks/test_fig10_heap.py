"""Figure 10: peak candidate-heap size vs T.

Paper observation: "With Signature, the number of entries kept in memory is
an order of magnitude less than that of Domination and Boolean" — the lazy
verification of Domination keeps unverified candidates around, and Boolean
must hold its whole selected subset.
"""

import random

import pytest

from benchmarks.conftest import N_QUERIES, SWEEP_SIZES, print_table
from repro.baselines.boolean_first import boolean_first_skyline
from repro.baselines.domination_first import domination_first_skyline
from repro.data.workload import sample_predicate
from repro.query.skyline import skyline_signature


@pytest.fixture(scope="module")
def heap_sweep(sweep_systems):
    rng = random.Random(10)
    results = {}
    for n_tuples in SWEEP_SIZES:
        system = sweep_systems[n_tuples]
        peaks = {"Signature": 0.0, "Boolean": 0.0, "Domination": 0.0}
        for _ in range(N_QUERIES):
            predicate = sample_predicate(system.relation, 1, rng)
            _, sig_stats, _ = skyline_signature(
                system.relation, system.rtree, system.pcube, predicate
            )
            _, bool_stats = boolean_first_skyline(
                system.relation, system.indexes, predicate
            )
            _, dom_stats, _ = domination_first_skyline(
                system.relation, system.rtree, predicate
            )
            peaks["Signature"] += sig_stats.peak_heap
            peaks["Boolean"] += bool_stats.peak_heap
            peaks["Domination"] += dom_stats.peak_heap
        results[n_tuples] = {
            key: value / N_QUERIES for key, value in peaks.items()
        }
    return results


def test_fig10_peak_heap(heap_sweep, sweep_systems, benchmark):
    rows = []
    for n_tuples in SWEEP_SIZES:
        avg = heap_sweep[n_tuples]
        rows.append(
            [
                f"{n_tuples:,}",
                f"{avg['Boolean']:.0f}",
                f"{avg['Domination']:.0f}",
                f"{avg['Signature']:.0f}",
                f"{min(avg['Boolean'], avg['Domination']) / avg['Signature']:.1f}x",
            ]
        )
        assert avg["Signature"] < avg["Domination"]
        assert avg["Signature"] < avg["Boolean"]
    print_table(
        "Figure 10: avg peak candidate-heap size vs T "
        "(paper: Signature an order of magnitude smaller)",
        ["T", "Boolean", "Domination", "Signature", "advantage"],
        rows,
    )

    system = sweep_systems[SWEEP_SIZES[0]]
    rng = random.Random(4)
    predicate = sample_predicate(system.relation, 1, rng)
    benchmark(
        lambda: boolean_first_skyline(
            system.relation, system.indexes, predicate
        )
    )
