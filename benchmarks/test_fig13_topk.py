"""Figure 13: top-k execution time vs k (Boolean, Ranking, IndexMerge,
Signature) for linear functions f = aX + bY + cZ with random parameters.

Paper observations: "Boolean is not sensitive to the value of k; Ranking
performs better when k is small.  Signature runs order of magnitudes
faster, and it also outperforms Index Merge ... the signature materialises
the joint space offline."
"""

import random

import pytest

from benchmarks.conftest import (
    N_QUERIES,
    SECONDS_PER_IO,
    SWEEP_SIZES,
    fmt_seconds,
    print_table,
)
from repro.baselines.boolean_first import boolean_first_topk
from repro.baselines.domination_first import ranking_topk
from repro.baselines.index_merge import index_merge_topk
from repro.data.workload import sample_linear_function, sample_predicate
from repro.query.topk import topk_signature

K_VALUES = (10, 20, 50, 100)
T = SWEEP_SIZES[-1]  # the largest sweep data set


@pytest.fixture(scope="module")
def topk_sweep(sweep_systems):
    system = sweep_systems[T]
    relation = system.relation
    rng = random.Random(13)
    results = {}
    for k in K_VALUES:
        modeled = {
            "Signature": 0.0,
            "Boolean": 0.0,
            "Ranking": 0.0,
            "IndexMerge": 0.0,
        }
        io = dict.fromkeys(modeled, 0.0)
        for _ in range(N_QUERIES):
            predicate = sample_predicate(relation, 1, rng)
            fn = sample_linear_function(
                relation.schema.n_preference, rng
            )
            ranked_sig, sig_stats, _ = topk_signature(
                relation, system.rtree, system.pcube, fn, k, predicate
            )
            ranked_bool, bool_stats = boolean_first_topk(
                relation, system.indexes, fn, k, predicate
            )
            ranked_rank, rank_stats, _ = ranking_topk(
                relation, system.rtree, fn, k, predicate
            )
            ranked_merge, merge_stats = index_merge_topk(
                relation, system.rtree, system.indexes, fn, k, predicate
            )
            reference = [round(s, 9) for _, s in ranked_sig]
            for other in (ranked_bool, ranked_rank, ranked_merge):
                assert [round(s, 9) for _, s in other] == reference
            for key, stats in (
                ("Signature", sig_stats),
                ("Boolean", bool_stats),
                ("Ranking", rank_stats),
                ("IndexMerge", merge_stats),
            ):
                modeled[key] += stats.modeled_seconds(SECONDS_PER_IO)
                io[key] += stats.total_io()
        results[k] = (
            {key: value / N_QUERIES for key, value in modeled.items()},
            {key: value / N_QUERIES for key, value in io.items()},
        )
    return results


def test_fig13_topk_vs_k(topk_sweep, sweep_systems, benchmark):
    rows = []
    for k in K_VALUES:
        modeled, io = topk_sweep[k]
        rows.append(
            [
                k,
                fmt_seconds(modeled["Boolean"]),
                fmt_seconds(modeled["Ranking"]),
                fmt_seconds(modeled["IndexMerge"]),
                fmt_seconds(modeled["Signature"]),
                f"{io['Signature']:.0f}",
            ]
        )
        # Shape: Signature beats every alternative at every k.
        for method in ("Boolean", "Ranking", "IndexMerge"):
            assert modeled["Signature"] <= modeled[method]
    print_table(
        f"Figure 13: top-k time vs k (T={T:,}, linear f = aX+bY+cZ, "
        "modeled at 5 ms/page)",
        ["k", "Boolean", "Ranking", "IndexMerge", "Signature", "Sig I/O"],
        rows,
    )
    # Ranking (minimal probing) degrades as k grows; Boolean does not care.
    assert topk_sweep[100][0]["Ranking"] > topk_sweep[10][0]["Ranking"]
    bool_small, bool_large = (
        topk_sweep[10][0]["Boolean"],
        topk_sweep[100][0]["Boolean"],
    )
    assert bool_large < bool_small * 1.5  # flat within noise

    system = sweep_systems[T]
    rng = random.Random(5)
    predicate = sample_predicate(system.relation, 1, rng)
    fn = sample_linear_function(system.relation.schema.n_preference, rng)
    benchmark(
        lambda: topk_signature(
            system.relation, system.rtree, system.pcube, fn, 20, predicate
        )
    )
