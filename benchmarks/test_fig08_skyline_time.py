"""Figure 8: skyline execution time vs T (Boolean, Domination, Signature).

Paper observation: "the signature-based query processing is at least one
order of magnitude faster ... Signature combines both pruning opportunities
and thus avoids unnecessary disk accesses."
"""

import pytest

from benchmarks.conftest import (
    N_QUERIES,
    SECONDS_PER_IO,
    SWEEP_SIZES,
    fmt_seconds,
    print_table,
)
from repro.baselines.boolean_first import boolean_first_skyline
from repro.baselines.domination_first import domination_first_skyline
from repro.data.workload import sample_predicate
from repro.query.skyline import skyline_signature


def run_methods(system, predicate):
    sig_tids, sig_stats, _ = skyline_signature(
        system.relation, system.rtree, system.pcube, predicate
    )
    bool_tids, bool_stats = boolean_first_skyline(
        system.relation, system.indexes, predicate
    )
    dom_tids, dom_stats, _ = domination_first_skyline(
        system.relation, system.rtree, predicate
    )
    assert set(sig_tids) == set(bool_tids) == set(dom_tids)
    return sig_stats, bool_stats, dom_stats


@pytest.fixture(scope="module")
def skyline_sweep(sweep_systems, request):
    import random

    rng = random.Random(8)
    results = {}
    for n_tuples in SWEEP_SIZES:
        system = sweep_systems[n_tuples]
        samples = []
        for _ in range(N_QUERIES):
            predicate = sample_predicate(system.relation, 1, rng)
            samples.append(run_methods(system, predicate))
        results[n_tuples] = samples
    return results


def averaged(samples, index, metric):
    return sum(metric(s[index]) for s in samples) / len(samples)


def test_fig08_skyline_time(skyline_sweep, benchmark, sweep_systems):
    rows = []
    for n_tuples in SWEEP_SIZES:
        samples = skyline_sweep[n_tuples]
        modeled = [
            averaged(samples, i, lambda s: s.modeled_seconds(SECONDS_PER_IO))
            for i in range(3)
        ]
        raw = [
            averaged(samples, i, lambda s: s.elapsed_seconds)
            for i in range(3)
        ]
        rows.append(
            [
                f"{n_tuples:,}",
                fmt_seconds(raw[1]),
                fmt_seconds(raw[2]),
                fmt_seconds(raw[0]),
                fmt_seconds(modeled[1]),
                fmt_seconds(modeled[2]),
                fmt_seconds(modeled[0]),
                f"{min(modeled[1], modeled[2]) / modeled[0]:.1f}x",
            ]
        )
        sig_modeled, bool_modeled, dom_modeled = (
            modeled[0],
            modeled[1],
            modeled[2],
        )
        # Shape: under the I/O model the signature method wins clearly.
        assert sig_modeled < bool_modeled
        assert sig_modeled < dom_modeled
    print_table(
        "Figure 8: skyline execution time vs T "
        f"(avg of {N_QUERIES} single-predicate queries; t@5ms charges "
        "5 ms per page access)",
        [
            "T",
            "Bool(raw)",
            "Dom(raw)",
            "Sig(raw)",
            "Bool@5ms",
            "Dom@5ms",
            "Sig@5ms",
            "speedup",
        ],
        rows,
    )

    system = sweep_systems[SWEEP_SIZES[0]]
    import random

    rng = random.Random(1)
    predicate = sample_predicate(system.relation, 1, rng)
    benchmark(
        lambda: skyline_signature(
            system.relation, system.rtree, system.pcube, predicate
        )
    )
